"""The Multipath plugin (§4.3): PQUIC over several network paths.

"Our plugin supports the exchange of path connection IDs and host
addresses.  It then associates a path ID between each pair of host
addresses.  Once the connection has been established, packets are
scheduled in a round-robin manner between available paths and it uses a
new ACK frame to acknowledge received packets with path-specific packet
numbers.  We also implement a packet scheduler sending packets on the
path having the lowest RTT to mimic Multipath TCP."

Both schedulers are provided (``scheduler='rr'`` / ``'lowrtt'``); the
paper evaluates round-robin.  The plugin acts as path manager: the client
pluglet opens a path per extra local address at handshake completion and
announces it with an ADD_ADDRESS frame; the server side accepts new
address pairs through its replacement of ``map_incoming_path``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.core.api import (
    FLD_BYTES_IN_FLIGHT,
    FLD_CWND,
    FLD_IS_CLIENT,
    FLD_NB_PATHS,
    FLD_PATH_ACTIVE,
    FLD_PATH_VALIDATED,
    FLD_SRTT_US,
    H_PLUGIN_BASE,
)
from repro.core.plugin import Plugin, Pluglet
from repro.quic import frames as F
from repro.quic.connection import ReservedFrame
from repro.quic.packet import Epoch
from repro.quic.wire import Buffer

PLUGIN_NAME = "org.pquic.multipath"
ADD_ADDRESS_FRAME_TYPE = 0x40
MP_ACK_FRAME_TYPE = 0x42

H_MP_SETUP = H_PLUGIN_BASE + 0
H_MP_PARSE_ADDR = H_PLUGIN_BASE + 1
H_MP_PROCESS_ADDR = H_PLUGIN_BASE + 2
H_MP_PARSE_ACK = H_PLUGIN_BASE + 3
H_MP_PROCESS_ACK = H_PLUGIN_BASE + 4
H_MP_WRITE = H_PLUGIN_BASE + 5
H_MP_RESERVE_ACKS = H_PLUGIN_BASE + 6
H_MP_MAP_PATH = H_PLUGIN_BASE + 7
H_MP_REQUEUE = H_PLUGIN_BASE + 8

MP_HELPERS = {
    "mp_setup": H_MP_SETUP,
    "mp_parse_addr": H_MP_PARSE_ADDR,
    "mp_process_addr": H_MP_PROCESS_ADDR,
    "mp_parse_ack": H_MP_PARSE_ACK,
    "mp_process_ack": H_MP_PROCESS_ACK,
    "mp_write": H_MP_WRITE,
    "mp_reserve_acks": H_MP_RESERVE_ACKS,
    "mp_map_path": H_MP_MAP_PATH,
    "mp_requeue": H_MP_REQUEUE,
}

ST_AREA = 3
ST_SIZE = 64
OFF_LAST_PATH = 0
OFF_PATHS_OPENED = 8
OFF_MPACKS_SENT = 16
OFF_MPACKS_RCVD = 24


@dataclass
class AddAddressFrame(F.Frame):
    """Announce an additional local address to the peer."""

    address: str = ""
    address_id: int = 0
    type = ADD_ADDRESS_FRAME_TYPE

    def serialize(self, buf: Buffer) -> None:
        buf.push_varint(self.type)
        buf.push_varint(self.address_id)
        buf.push_varint_prefixed_bytes(self.address.encode("utf-8"))

    @classmethod
    def parse(cls, buf: Buffer, frame_type: int) -> "AddAddressFrame":
        address_id = buf.pull_varint()
        address = buf.pull_varint_prefixed_bytes().decode("utf-8")
        return cls(address=address, address_id=address_id)


@dataclass
class MpAckFrame(F.Frame):
    """ACK with a path identifier: path-specific packet numbers."""

    path_id: int = 0
    ack: Optional[F.AckFrame] = None
    type = MP_ACK_FRAME_TYPE

    @property
    def ack_eliciting(self) -> bool:
        return False  # like ACK

    def serialize(self, buf: Buffer) -> None:
        buf.push_varint(self.type)
        buf.push_varint(self.path_id)
        self.ack.serialize(buf)  # includes its own 0x02 type byte

    @classmethod
    def parse(cls, buf: Buffer, frame_type: int) -> "MpAckFrame":
        path_id = buf.pull_varint()
        inner_type = buf.pull_varint()
        ack = F.AckFrame.parse(buf, inner_type)
        return cls(path_id=path_id, ack=ack)


def _host_helpers(runtime) -> dict:
    conn = runtime.conn

    def h_setup(vm, *_):
        """Client path manager: one path per extra local address, each
        announced with ADD_ADDRESS."""
        conn = runtime.conn
        created = 0
        for i, address in enumerate(conn.extra_local_addresses):
            if any(p.local_addr == address for p in conn.paths):
                continue
            index = conn.protoops.run(
                conn, "create_path", None, address, conn.paths[0].peer_addr
            )
            # §8.2: a new path must prove two-way reachability before the
            # scheduler may place data on it.
            conn.start_path_validation(index)
            conn.reserve_frames([
                ReservedFrame(
                    frame=AddAddressFrame(address=address, address_id=i + 1),
                    plugin=PLUGIN_NAME,
                )
            ])
            created += 1
        return created

    def h_parse_addr(vm, buf_handle, *_):
        ctx = runtime.context
        frame = AddAddressFrame.parse(ctx.raw_args[buf_handle], ADD_ADDRESS_FRAME_TYPE)
        runtime.set_result(frame)
        return frame.address_id

    def h_process_addr(vm, frame_handle, *_):
        """Open the reverse path toward the announced address."""
        conn = runtime.conn
        frame = runtime.context.raw_args[frame_handle]
        if any(p.peer_addr == frame.address for p in conn.paths):
            return 0
        index = conn.protoops.run(
            conn, "create_path", None, conn.paths[0].local_addr, frame.address
        )
        conn.start_path_validation(index)
        return index

    def h_parse_ack(vm, buf_handle, *_):
        ctx = runtime.context
        frame = MpAckFrame.parse(ctx.raw_args[buf_handle], MP_ACK_FRAME_TYPE)
        runtime.set_result(frame)
        return frame.path_id

    def h_process_ack(vm, frame_handle, *_):
        """Route the embedded ACK to its path's packet-number space."""
        conn = runtime.conn
        frame = runtime.context.raw_args[frame_handle]
        if not 0 <= frame.path_id < len(conn.paths):
            return 0
        ctx = {"epoch": Epoch.ONE_RTT, "path_index": frame.path_id}
        conn._process_ack_frame(conn, frame.ack, ctx)
        return 1

    def h_write(vm, frame_handle, buf_handle, *_):
        ctx = runtime.context
        ctx.raw_args[frame_handle].serialize(ctx.raw_args[buf_handle])
        return 0

    def h_reserve_acks(vm, *_):
        """Book one MP_ACK per path owing an acknowledgment."""
        conn = runtime.conn
        reserved = 0
        for path in conn.paths:
            if not path.space.ack_needed:
                continue
            ack = path.space.ack_frame(conn.now)
            if ack is None:
                continue
            path.space.ack_needed = False
            conn.reserve_frames([
                ReservedFrame(
                    frame=MpAckFrame(path_id=path.index, ack=ack),
                    plugin=PLUGIN_NAME,
                    retransmittable=False,
                    congestion_controlled=False,
                )
            ])
            reserved += 1
        return reserved

    def h_map_path(vm, local_handle, peer_handle, *_):
        """find-or-create the path for an incoming (local, peer) pair."""
        conn = runtime.conn
        ctx = runtime.context
        local = ctx.raw_args[local_handle]
        peer = ctx.raw_args[peer_handle]
        for path in conn.paths:
            if path.local_addr == local and path.peer_addr == peer:
                return path.index
        if not conn.handshake_complete:
            return 0
        index = conn.protoops.run(conn, "create_path", None, local, peer)
        conn.start_path_validation(index)
        return index

    def h_requeue(vm, frame_handle, *_):
        frame = runtime.context.raw_args[frame_handle]
        conn.reserve_frames([
            ReservedFrame(frame=frame, plugin=PLUGIN_NAME)
        ])
        return 1

    return {
        H_MP_SETUP: h_setup,
        H_MP_PARSE_ADDR: h_parse_addr,
        H_MP_PROCESS_ADDR: h_process_addr,
        H_MP_PARSE_ACK: h_parse_ack,
        H_MP_PROCESS_ACK: h_process_ack,
        H_MP_WRITE: h_write,
        H_MP_RESERVE_ACKS: h_reserve_acks,
        H_MP_MAP_PATH: h_map_path,
        H_MP_REQUEUE: h_requeue,
    }


def _register_frames(conn) -> None:
    conn.frame_registry.register(ADD_ADDRESS_FRAME_TYPE, AddAddressFrame)
    conn.frame_registry.register(MP_ACK_FRAME_TYPE, MpAckFrame)


_RR_SCHEDULER = f"""
def select_path_rr():
    n = get({FLD_NB_PATHS}, 0)
    if n <= 1:
        return 0
    st = get_opaque_data({ST_AREA}, {ST_SIZE})
    last = mem64[st + {OFF_LAST_PATH}]
    i = 0
    while i < n:
        cand = (last + 1 + i) % n
        if get({FLD_PATH_ACTIVE}, cand) == 1:
            if get({FLD_PATH_VALIDATED}, cand) == 1:
                if get({FLD_CWND}, cand) > get({FLD_BYTES_IN_FLIGHT}, cand):
                    mem64[st + {OFF_LAST_PATH}] = cand
                    return cand
        i += 1
    mem64[st + {OFF_LAST_PATH}] = (last + 1) % n
    return (last + 1) % n
"""

_LOWRTT_SCHEDULER = f"""
def select_path_lowrtt():
    n = get({FLD_NB_PATHS}, 0)
    if n <= 1:
        return 0
    best = 0
    best_rtt = 0
    found = 0
    i = 0
    while i < n:
        if get({FLD_PATH_ACTIVE}, i) == 1:
            if get({FLD_PATH_VALIDATED}, i) == 1:
                if get({FLD_CWND}, i) > get({FLD_BYTES_IN_FLIGHT}, i):
                    rtt = get({FLD_SRTT_US}, i)
                    if found == 0 or rtt < best_rtt:
                        best = i
                        best_rtt = rtt
                        found = 1
        i += 1
    return best
"""


from repro.core.plugin import register_host_resolver

register_host_resolver(
    PLUGIN_NAME, lambda name: (_host_helpers, _register_frames)
)


def build_multipath_plugin(scheduler: str = "rr") -> Plugin:
    """Assemble the multipath plugin with the chosen packet scheduler."""
    if scheduler == "rr":
        sched_source, sched_name = _RR_SCHEDULER, "select_path_rr"
    elif scheduler == "lowrtt":
        sched_source, sched_name = _LOWRTT_SCHEDULER, "select_path_lowrtt"
    else:
        raise ValueError(f"unknown scheduler {scheduler!r}")

    pluglets = [
        Pluglet.from_source(sched_name, "select_sending_path", "replace",
                            sched_source, helpers=MP_HELPERS),
        # Path manager: open extra paths when the handshake completes.
        Pluglet.from_source(
            "path_manager", "connection_established", "post",
            f"""
def path_manager():
    if get({FLD_IS_CLIENT}, 0) == 1:
        st = get_opaque_data({ST_AREA}, {ST_SIZE})
        opened = mp_setup()
        mem64[st + {OFF_PATHS_OPENED}] = mem64[st + {OFF_PATHS_OPENED}] + opened
""",
            helpers=MP_HELPERS),
        # ADD_ADDRESS frame handling.
        Pluglet.from_source(
            "parse_add_address", "parse_frame", "replace",
            """
def parse_add_address(buf, frame_type):
    return mp_parse_addr(buf)
""",
            helpers=MP_HELPERS, param=ADD_ADDRESS_FRAME_TYPE),
        Pluglet.from_source(
            "process_add_address", "process_frame", "replace",
            """
def process_add_address(frame, ctx):
    mp_process_addr(frame)
""",
            helpers=MP_HELPERS, param=ADD_ADDRESS_FRAME_TYPE),
        Pluglet.from_source(
            "write_add_address", "write_frame", "replace",
            """
def write_add_address(frame, buf):
    mp_write(frame, buf)
""",
            helpers=MP_HELPERS, param=ADD_ADDRESS_FRAME_TYPE),
        Pluglet.from_source(
            "notify_add_address", "notify_frame", "replace",
            """
def notify_add_address(frame, acked, pkt):
    if not acked:
        mp_requeue(frame)
""",
            helpers=MP_HELPERS, param=ADD_ADDRESS_FRAME_TYPE),
        # MP_ACK frame handling.
        Pluglet.from_source(
            "parse_mp_ack", "parse_frame", "replace",
            """
def parse_mp_ack(buf, frame_type):
    return mp_parse_ack(buf)
""",
            helpers=MP_HELPERS, param=MP_ACK_FRAME_TYPE),
        Pluglet.from_source(
            "process_mp_ack", "process_frame", "replace",
            f"""
def process_mp_ack(frame, ctx):
    st = get_opaque_data({ST_AREA}, {ST_SIZE})
    mem64[st + {OFF_MPACKS_RCVD}] = mem64[st + {OFF_MPACKS_RCVD}] + 1
    mp_process_ack(frame)
""",
            helpers=MP_HELPERS, param=MP_ACK_FRAME_TYPE),
        Pluglet.from_source(
            "write_mp_ack", "write_frame", "replace",
            """
def write_mp_ack(frame, buf):
    mp_write(frame, buf)
""",
            helpers=MP_HELPERS, param=MP_ACK_FRAME_TYPE),
        # Before each packet: book MP_ACKs for paths owing one.
        Pluglet.from_source(
            "mp_ack_booker", "before_sending_packet", "post",
            f"""
def mp_ack_booker():
    st = get_opaque_data({ST_AREA}, {ST_SIZE})
    n = mp_reserve_acks()
    mem64[st + {OFF_MPACKS_SENT}] = mem64[st + {OFF_MPACKS_SENT}] + n
""",
            helpers=MP_HELPERS),
        # Path-aware demultiplexing of incoming datagrams.
        Pluglet.from_source(
            "map_incoming", "map_incoming_path", "replace",
            """
def map_incoming(local_addr, peer_addr):
    return mp_map_path(local_addr, peer_addr)
""",
            helpers=MP_HELPERS),
    ]
    return Plugin(
        PLUGIN_NAME,
        pluglets,
        host_helpers=_host_helpers,
        frame_registrar=_register_frames,
    )
