"""The Multipath plugin (§4.3)."""

from .plugin import (
    ADD_ADDRESS_FRAME_TYPE,
    MP_ACK_FRAME_TYPE,
    PLUGIN_NAME,
    AddAddressFrame,
    MpAckFrame,
    build_multipath_plugin,
)

__all__ = [
    "ADD_ADDRESS_FRAME_TYPE",
    "AddAddressFrame",
    "MP_ACK_FRAME_TYPE",
    "MpAckFrame",
    "PLUGIN_NAME",
    "build_multipath_plugin",
]
