"""Deterministic fault injection for chaos experiments.

The Figure-7 testbed shapes links with NetEm/HTB and replays seeded loss
patterns; this module adds the *fault* half of that methodology — the
conditions a robust PQUIC deployment must survive but a clean testbed
never produces:

* **corruption** — a byte of the datagram payload is flipped in flight
  (the QUIC AEAD then rejects the packet, so corruption must look like
  loss, never like a connection error);
* **duplication** — the datagram is delivered twice;
* **reordering bursts** — the datagram is held back so later packets
  overtake it;
* **link flaps** — scheduled windows during which the wrapped pipes
  black-hole everything;
* **NAT rebinds** — a scheduled flush of a :class:`~repro.netsim.node.Nat`
  hop's binding table, so an inside flow reappears from a new external
  address mid-connection (RFC 9000 §9 migration);
* **address spoofs** — a single forged datagram injected with an
  attacker-chosen source address (off-path injection, RFC 9000 §9.3.2).

Every fault type draws from its *own* seeded RNG on *every* packet, so
enabling or re-rating one fault never shifts the decision sequence of the
others, and an experiment replayed with the same seed sees the identical
fault pattern — the property the paper relies on for fair comparisons.

A :class:`FaultInjector` wraps existing :class:`~repro.netsim.link.Pipe`
delivery callbacks in place; topologies do not need to know about it::

    injector = FaultInjector(sim, seed=7, corrupt_rate=0.05)
    injector.inject_link(topology.link)
    injector.schedule_flap(down_at=1.0, duration=0.5)
"""

from __future__ import annotations

import dataclasses
import random
from typing import Callable

from .link import Link, Pipe
from .sim import Simulator


class FaultStats:
    """Counters for every injected fault, per injector."""

    __slots__ = ("corrupted", "duplicated", "reordered", "dropped_down",
                 "flaps", "delivered", "nat_rebinds", "spoofed")

    def __init__(self) -> None:
        self.corrupted = 0
        self.duplicated = 0
        self.reordered = 0
        self.dropped_down = 0
        self.flaps = 0
        self.delivered = 0
        self.nat_rebinds = 0
        self.spoofed = 0

    def as_dict(self) -> dict:
        return {name: getattr(self, name) for name in self.__slots__}

    def __repr__(self) -> str:
        inner = ", ".join(f"{k}={v}" for k, v in self.as_dict().items())
        return f"<FaultStats {inner}>"


class FaultInjector:
    """Seeded fault injection on the delivery side of existing pipes.

    Rates are per-datagram probabilities in ``[0, 1]``.  ``reorder_delay``
    is how long a reordered datagram is held back (it re-enters the event
    queue after packets that were behind it)."""

    def __init__(
        self,
        sim: Simulator,
        seed: int = 0,
        corrupt_rate: float = 0.0,
        duplicate_rate: float = 0.0,
        reorder_rate: float = 0.0,
        reorder_delay: float = 0.05,
    ):
        for name, rate in (("corrupt_rate", corrupt_rate),
                           ("duplicate_rate", duplicate_rate),
                           ("reorder_rate", reorder_rate)):
            if not 0.0 <= rate <= 1.0:
                raise ValueError(f"{name} must be within [0, 1]: {rate}")
        if reorder_delay < 0:
            raise ValueError("reorder_delay must be >= 0")
        self.sim = sim
        self.corrupt_rate = corrupt_rate
        self.duplicate_rate = duplicate_rate
        self.reorder_rate = reorder_rate
        self.reorder_delay = reorder_delay
        # One independent stream per fault type, all derived from `seed`:
        # re-rating one fault must not shift the others' decisions.
        self._corrupt_rng = random.Random(seed * 4 + 1)
        self._dup_rng = random.Random(seed * 4 + 2)
        self._reorder_rng = random.Random(seed * 4 + 3)
        self.down = False
        self.stats = FaultStats()

    # --- wiring -----------------------------------------------------------

    def inject(self, pipe: Pipe) -> None:
        """Interpose on ``pipe``'s delivery, now and for future connects."""
        original_connect = pipe.connect

        def wrapped_connect(deliver: Callable) -> None:
            original_connect(self._make_deliver(deliver))

        pipe.connect = wrapped_connect  # type: ignore[method-assign]
        if pipe._deliver is not None:
            pipe._deliver = self._make_deliver(pipe._deliver)

    def inject_link(self, link: Link) -> None:
        """Interpose on both directions of a bidirectional link."""
        self.inject(link.forward)
        self.inject(link.backward)

    def _make_deliver(self, inner: Callable) -> Callable:
        def deliver(packet) -> None:
            self._process(inner, packet)
        return deliver

    # --- link flaps -------------------------------------------------------

    def set_down(self, down: bool) -> None:
        if down and not self.down:
            self.stats.flaps += 1
        self.down = down

    def schedule_flap(self, down_at: float, duration: float) -> None:
        """Black-hole the wrapped pipes for ``[down_at, down_at+duration)``
        (absolute simulation time)."""
        if duration <= 0:
            raise ValueError("flap duration must be > 0")
        self.sim.schedule_at(down_at, self.set_down, True)
        self.sim.schedule_at(down_at + duration, self.set_down, False)

    # --- address-level adversaries ----------------------------------------

    def schedule_nat_rebind(self, nat, at: float) -> None:
        """Flush ``nat``'s binding table at ``at`` (absolute simulation
        time): its inside flows reappear from a fresh external
        address/port and the transport must survive the migration."""
        if at < 0:
            raise ValueError("rebind time must be >= 0")
        self.sim.schedule_at(at, self._do_rebind, nat)

    def _do_rebind(self, nat) -> None:
        nat.rebind()
        self.stats.nat_rebinds += 1

    def schedule_address_spoof(self, host, at: float, payload: bytes,
                               src_addr: str, src_port: int,
                               dst_addr: str, dst_port: int) -> None:
        """Inject one forged datagram with an attacker-chosen source at
        ``at``.  ``host`` is the attacker's injection point and must own
        an interface for ``src_addr``."""
        if at < 0:
            raise ValueError("spoof time must be >= 0")
        self.sim.schedule_at(at, self._do_spoof, host, payload,
                             src_addr, src_port, dst_addr, dst_port)

    def _do_spoof(self, host, payload, src_addr, src_port,
                  dst_addr, dst_port) -> None:
        self.stats.spoofed += 1
        host.sendto(payload, src_addr, src_port, dst_addr, dst_port)

    # --- the fault pipeline -----------------------------------------------

    def _process(self, inner: Callable, packet) -> None:
        if getattr(packet, "segments", None) is not None:
            self._process_burst(inner, packet)
            return
        # Draw every RNG on every packet, even at rate 0, to keep each
        # stream aligned across configurations.
        corrupt = self._corrupt_rng.random() < self.corrupt_rate
        duplicate = self._dup_rng.random() < self.duplicate_rate
        reorder = self._reorder_rng.random() < self.reorder_rate
        if self.down:
            self.stats.dropped_down += 1
            return
        if corrupt:
            packet = self._corrupt(packet)
            self.stats.corrupted += 1
        if duplicate:
            # The copy re-enters the queue at the current time, landing
            # right behind the original.
            self.stats.duplicated += 1
            self.sim.schedule(0.0, self._deliver_counted, inner, packet)
        if reorder:
            self.stats.reordered += 1
            self.sim.schedule(self.reorder_delay, self._deliver_counted,
                              inner, packet)
            return
        self._deliver_counted(inner, packet)

    def _process_burst(self, inner: Callable, burst) -> None:
        """Unbundle a GSO burst through the fault pipeline: every segment
        gets its own draws (the identical RNG sequence an unbatched run
        would see), faulted segments splinter off into their own delivery
        events, and the clean survivors continue as one burst."""
        survivors = []
        for packet in burst.segments:
            corrupt = self._corrupt_rng.random() < self.corrupt_rate
            duplicate = self._dup_rng.random() < self.duplicate_rate
            reorder = self._reorder_rng.random() < self.reorder_rate
            if self.down:
                self.stats.dropped_down += 1
                continue
            if corrupt:
                packet = self._corrupt(packet)
                self.stats.corrupted += 1
            if duplicate:
                self.stats.duplicated += 1
                self.sim.schedule(0.0, self._deliver_counted, inner, packet)
            if reorder:
                self.stats.reordered += 1
                self.sim.schedule(self.reorder_delay, self._deliver_counted,
                                  inner, packet)
                continue
            survivors.append(packet)
        if not survivors:
            return
        burst.segments = survivors
        self.stats.delivered += len(survivors)
        inner(burst)

    def _deliver_counted(self, inner: Callable, packet) -> None:
        self.stats.delivered += 1
        inner(packet)

    def _corrupt(self, packet):
        payload = getattr(packet, "payload", b"")
        if not payload:
            return packet
        index = self._corrupt_rng.randrange(len(payload))
        mask = 1 + self._corrupt_rng.randrange(255)  # never a no-op flip
        mutated = bytearray(payload)
        mutated[index] ^= mask
        return dataclasses.replace(packet, payload=bytes(mutated))
