"""A TCP model with Cubic congestion control.

Figures 8 and 11 measure the Download Completion Time of "a single file
transfer using TCPCubic" inside and outside the PQUIC VPN tunnel.  This
module provides that traffic source: a connection-oriented, reliable byte
stream with slow start, Cubic congestion avoidance, fast
retransmit/recovery on three duplicate ACKs, and an RFC 6298 retransmission
timer.  The segment transport is a pluggable ``send`` function, so the same
flow runs natively over the simulator or through the VPN tunnel device.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Callable, Optional

from .sim import Simulator

TCP_HEADER = 20
IP_HEADER = 20
#: Cubic constants (RFC 8312).
CUBIC_C = 0.4
CUBIC_BETA = 0.7

FLAG_SYN = 0x1
FLAG_ACK = 0x2
FLAG_FIN = 0x4
FLAG_SACK = 0x8

MAX_SACK_BLOCKS = 4

_SEG = struct.Struct("<IIBBH")  # seq, ack, flags, n_sacks, window(unused)


@dataclass
class Segment:
    seq: int = 0
    ack: int = 0
    flags: int = 0
    data: bytes = b""
    sacks: Optional[list] = None  # [(start, stop), ...] on ACK segments

    def encode(self) -> bytes:
        sacks = self.sacks or []
        flags = self.flags | (FLAG_SACK if sacks else 0)
        header = _SEG.pack(self.seq & 0xFFFFFFFF, self.ack & 0xFFFFFFFF,
                           flags, len(sacks), 0)
        blocks = b"".join(
            struct.pack("<II", s & 0xFFFFFFFF, e & 0xFFFFFFFF) for s, e in sacks
        )
        pad = b"\x00" * (TCP_HEADER + IP_HEADER - _SEG.size)
        return header + pad + blocks + self.data

    @classmethod
    def decode(cls, data: bytes) -> "Segment":
        seq, ack, flags, n_sacks, _win = _SEG.unpack_from(data)
        offset = TCP_HEADER + IP_HEADER
        sacks = []
        if flags & FLAG_SACK:
            for _ in range(n_sacks):
                s, e = struct.unpack_from("<II", data, offset)
                sacks.append((s, e))
                offset += 8
        return cls(seq=seq, ack=ack, flags=flags, data=data[offset:],
                   sacks=sacks or None)

    @property
    def size(self) -> int:
        return len(self.encode())


class CubicWindow:
    """Cubic congestion window (in bytes), with standard slow start."""

    def __init__(self, mss: int, initial_segments: int = 10):
        self.mss = mss
        self.cwnd = float(initial_segments * mss)
        self.ssthresh = float("inf")
        self.w_max = 0.0
        self._epoch_start: Optional[float] = None
        self._k = 0.0

    @property
    def in_slow_start(self) -> bool:
        return self.cwnd < self.ssthresh

    def on_ack(self, acked_bytes: int, now: float, rtt: float) -> None:
        if self.in_slow_start:
            self.cwnd += acked_bytes
            return
        if self._epoch_start is None:
            self._epoch_start = now
            w_max_seg = max(self.w_max, self.cwnd) / self.mss
            self._k = (w_max_seg * (1 - CUBIC_BETA) / CUBIC_C) ** (1 / 3)
        t = now - self._epoch_start + rtt
        target = CUBIC_C * (t - self._k) ** 3 + self.w_max / self.mss
        target_bytes = max(target * self.mss, self.cwnd + self.mss * 0.01)
        # Approach the cubic target gradually (per-ACK increment).
        self.cwnd += (target_bytes - self.cwnd) * acked_bytes / max(self.cwnd, 1.0)
        self.cwnd = max(self.cwnd, 2 * self.mss)

    def on_loss(self) -> None:
        self.w_max = self.cwnd
        self.cwnd = max(self.cwnd * CUBIC_BETA, 2 * self.mss)
        self.ssthresh = self.cwnd
        self._epoch_start = None

    def on_timeout(self) -> None:
        self.w_max = self.cwnd
        self.ssthresh = max(self.cwnd * CUBIC_BETA, 2 * self.mss)
        self.cwnd = float(self.mss)
        self._epoch_start = None


class TcpSender:
    """The sending side of a one-way bulk transfer."""

    def __init__(
        self,
        sim: Simulator,
        send: Callable[[bytes], None],
        total_bytes: int,
        mss: int = 1460,
        on_complete: Optional[Callable[[], None]] = None,
    ):
        self.sim = sim
        self.send = send
        self.total = total_bytes
        self.mss = mss
        self.on_complete = on_complete
        self.window = CubicWindow(mss)
        self.snd_una = 0          # first unacked byte
        self.snd_nxt = 0          # next new byte to send
        self.srtt: Optional[float] = None
        self.rttvar = 0.0
        self.rto = 1.0
        self.completed = False
        self.started = False
        self.syn_acked = False
        self.fin_sent = False
        self.retransmissions = 0
        self._sent_times: dict[int, float] = {}
        self._dupacks = 0
        self._recover = 0
        self._in_recovery = False
        self._rto_event = None
        self._sacked: list = []       # merged [(start, stop)] above snd_una
        self._rtx_done: set = set()   # hole starts retransmitted this episode
        self._ever_rtx: set = set()   # every seq ever retransmitted
        self._reordering_seen = False  # adaptive RACK switch

    # ------------------------------------------------------------------

    def start(self) -> None:
        self.started = True
        self.send(Segment(seq=0, flags=FLAG_SYN).encode())
        self._arm_rto()

    def on_segment(self, data: bytes) -> None:
        seg = Segment.decode(data)
        if seg.flags & FLAG_SYN and seg.flags & FLAG_ACK and not self.syn_acked:
            self.syn_acked = True
            self._rtt_sample(self.sim.now)  # SYN rtt approximation skipped
            self._pump()
            return
        if not seg.flags & FLAG_ACK:
            return
        if seg.sacks:
            self._merge_sacks(seg.sacks)
        self._on_ack(seg.ack)

    def _on_ack(self, ack: int) -> None:
        if self.completed:
            return
        if ack > self.snd_una:
            # A hole that fills without us having retransmitted it, while
            # SACK blocks sat above it, was reordering — not loss.  Switch
            # the loss detector to RACK-style time-based tolerance.
            if (
                self._sacked
                and not self._reordering_seen
                and self.snd_una not in self._ever_rtx
                and any(s > self.snd_una for s, _e in self._sacked)
            ):
                self._reordering_seen = True
            acked = ack - self.snd_una
            sent_at = self._sent_times.pop(self.snd_una, None)
            if sent_at is not None and not self._in_recovery:
                self._rtt_sample(self.sim.now - sent_at)
            elif self.srtt is not None:
                # New data acked: cancel any exponential RTO backoff.
                self.rto = max(0.2, self.srtt + max(0.01, 4 * self.rttvar))
            self.snd_una = ack
            self._dupacks = 0
            self._sacked = [(s, e) for s, e in self._sacked if e > self.snd_una]
            if len(self._sent_times) > 256:
                self._sent_times = {
                    k: v for k, v in self._sent_times.items()
                    if k >= self.snd_una
                }
            if self._in_recovery:
                if ack >= self._recover:
                    self._in_recovery = False
                    self._rtx_done.clear()
                else:
                    # Partial ACK: the next hole is also lost.
                    self._retransmit_holes(limit=2)
            if not self._in_recovery:
                rtt = self.srtt or 0.1
                self.window.on_ack(acked, self.sim.now, rtt)
            self._arm_rto()
            if self.snd_una >= self.total:
                self._complete()
                return
        elif ack == self.snd_una and self.snd_nxt > self.snd_una:
            self._dupacks += 1
            if (self._dupacks >= 3 and not self._in_recovery
                    and self._hole_is_lost()):
                # Fast retransmit + SACK-based recovery.
                self._in_recovery = True
                self._recover = self.snd_nxt
                self._rtx_done.clear()
                self.window.on_loss()
                self._retransmit_holes(limit=3)
            elif self._in_recovery:
                self._retransmit_holes(limit=2)
        self._pump()

    def _hole_is_lost(self) -> bool:
        """Adaptive RACK-style reordering tolerance (Linux behaviour).

        Until reordering has actually been observed on the path, classic
        3-dupack semantics apply (a full window with a real loss generates
        no new SACKs, so a pure time test would stall into RTO).  Once a
        hole has been seen to fill on its own, treat a hole as lost only
        if some SACKed segment was sent a reordering-window *later* —
        multipath round-robin reorders constantly and classic dupack
        would spuriously halve the window."""
        if not self._reordering_seen:
            return True
        if not self._sacked:
            return True  # no SACK info: classic dupack semantics
        hole_time = self._sent_times.get(self.snd_una)
        if hole_time is None:
            return True
        reo_wnd = (self.srtt or 0.1) / 4
        newest_sacked = None
        for seq, sent_at in self._sent_times.items():
            if seq <= self.snd_una:
                continue
            if any(s <= seq < e for s, e in self._sacked):
                if newest_sacked is None or sent_at > newest_sacked:
                    newest_sacked = sent_at
        if newest_sacked is None:
            return True
        return newest_sacked > hole_time + reo_wnd

    def _merge_sacks(self, blocks: list) -> None:
        merged = sorted(self._sacked + [tuple(b) for b in blocks])
        out: list = []
        for start, stop in merged:
            if out and start <= out[-1][1]:
                out[-1] = (out[-1][0], max(out[-1][1], stop))
            else:
                out.append((start, stop))
        self._sacked = out

    def _holes(self) -> list:
        """Unsacked gaps between snd_una and the highest SACKed byte."""
        if not self._sacked:
            return [(self.snd_una, min(self.snd_una + self.mss, self.total))]
        holes = []
        cursor = self.snd_una
        for start, stop in self._sacked:
            if start > cursor:
                holes.append((cursor, start))
            cursor = max(cursor, stop)
        return holes

    def _retransmit_holes(self, limit: int) -> None:
        sent = 0
        for start, stop in self._holes():
            seq = start
            while seq < stop and sent < limit:
                if seq not in self._rtx_done:
                    end = min(seq + self.mss, stop, self.total)
                    fin = FLAG_FIN if end >= self.total else 0
                    self.send(Segment(
                        seq=seq, flags=fin, data=b"\x00" * (end - seq)
                    ).encode())
                    self._sent_times.pop(seq, None)
                    self._rtx_done.add(seq)
                    self._ever_rtx.add(seq)
                    self.retransmissions += 1
                    sent += 1
                seq = min(seq + self.mss, stop)
            if sent >= limit:
                break
        self._arm_rto()

    def _retransmit_one(self) -> None:
        end = min(self.snd_una + self.mss, self.total)
        self.send(Segment(
            seq=self.snd_una,
            data=b"\x00" * (end - self.snd_una),
        ).encode())
        self._sent_times.pop(self.snd_una, None)  # Karn: no sample
        self._ever_rtx.add(self.snd_una)
        self._arm_rto()

    def _pump(self) -> None:
        if not self.syn_acked or self.completed:
            return
        inflight = self.snd_nxt - self.snd_una
        while (
            self.snd_nxt < self.total
            and inflight + self.mss <= self.window.cwnd
        ):
            end = min(self.snd_nxt + self.mss, self.total)
            fin = FLAG_FIN if end >= self.total else 0
            self.send(Segment(
                seq=self.snd_nxt,
                flags=fin,
                data=b"\x00" * (end - self.snd_nxt),
            ).encode())
            self._sent_times[self.snd_nxt] = self.sim.now
            self.snd_nxt = end
            inflight = self.snd_nxt - self.snd_una
        if self._rto_event is None:
            self._arm_rto()

    # --- timers ----------------------------------------------------------

    def _rtt_sample(self, rtt: float) -> None:
        if rtt <= 0:
            return
        # HyStart-like delay-based slow-start exit: queue build-up beyond
        # 1.5x the base RTT means the pipe is full — stop doubling before
        # the drop-tail burst (Linux Cubic behaves this way).
        self._min_rtt_seen = min(getattr(self, "_min_rtt_seen", rtt), rtt)
        if (
            self.window.in_slow_start
            and rtt > self._min_rtt_seen * 1.5
            and self.window.cwnd > 16 * self.mss
        ):
            self.window.ssthresh = self.window.cwnd
        if self.srtt is None:
            self.srtt = rtt
            self.rttvar = rtt / 2
        else:
            self.rttvar = 0.75 * self.rttvar + 0.25 * abs(self.srtt - rtt)
            self.srtt = 0.875 * self.srtt + 0.125 * rtt
        self.rto = max(0.2, self.srtt + max(0.01, 4 * self.rttvar))

    def _arm_rto(self) -> None:
        if self._rto_event is not None:
            self._rto_event.cancel()
            self._rto_event = None
        if self.completed:
            return
        if self.snd_nxt > self.snd_una or not self.syn_acked:
            self._rto_event = self.sim.schedule(self.rto, self._on_rto)

    def _on_rto(self) -> None:
        self._rto_event = None
        if self.completed:
            return
        if not self.syn_acked:
            self.send(Segment(seq=0, flags=FLAG_SYN).encode())
        else:
            self.window.on_timeout()
            self._in_recovery = False
            self.retransmissions += 1
            self._retransmit_one()
        self.rto = min(self.rto * 2, 60.0)
        self._arm_rto()

    def _complete(self) -> None:
        self.completed = True
        if self._rto_event is not None:
            self._rto_event.cancel()
            self._rto_event = None
        if self.on_complete is not None:
            self.on_complete()


class TcpReceiver:
    """The receiving side: reassembly and cumulative ACKs."""

    def __init__(self, sim: Simulator, send: Callable[[bytes], None]):
        self.sim = sim
        self.send = send
        self.rcv_nxt = 0
        self._ooo: dict[int, int] = {}  # seq -> end of out-of-order chunk
        self.bytes_received = 0
        self.fin_seq: Optional[int] = None
        self.finished = False

    def on_segment(self, data: bytes) -> None:
        seg = Segment.decode(data)
        if seg.flags & FLAG_SYN:
            self.send(Segment(seq=0, ack=0, flags=FLAG_SYN | FLAG_ACK).encode())
            return
        end = seg.seq + len(seg.data)
        if seg.flags & FLAG_FIN:
            self.fin_seq = end
        if end > self.rcv_nxt:
            if seg.seq <= self.rcv_nxt:  # in-order (or fills the hole)
                self.rcv_nxt = end
                # Absorb any buffered chunks now contiguous.
                changed = True
                while changed:
                    changed = False
                    for start, stop in sorted(self._ooo.items()):
                        if start <= self.rcv_nxt < stop:
                            self.rcv_nxt = stop
                            del self._ooo[start]
                            changed = True
                            break
                        if stop <= self.rcv_nxt:
                            del self._ooo[start]
                            changed = True
                            break
            else:
                self._ooo[seg.seq] = max(self._ooo.get(seg.seq, 0), end)
        self.bytes_received = self.rcv_nxt
        if self.fin_seq is not None and self.rcv_nxt >= self.fin_seq:
            self.finished = True
        sacks = self._sack_blocks()
        self.send(Segment(seq=0, ack=self.rcv_nxt, flags=FLAG_ACK,
                          sacks=sacks).encode())

    def _sack_blocks(self) -> Optional[list]:
        if not self._ooo:
            return None
        merged: list = []
        for start, stop in sorted(self._ooo.items()):
            if merged and start <= merged[-1][1]:
                merged[-1] = (merged[-1][0], max(merged[-1][1], stop))
            else:
                merged.append((start, stop))
        return merged[:MAX_SACK_BLOCKS]


class TcpBulkTransfer:
    """Convenience wiring: a one-way TCP Cubic file transfer.

    ``sender_send`` / ``receiver_send`` deliver raw segment bytes toward
    the peer (plain simulator sockets or a VPN tunnel device).  Call
    :meth:`start`; :attr:`completed` and :attr:`completion_time` report
    the outcome (completion = last data byte ACKed at the sender).
    """

    def __init__(self, sim: Simulator, total_bytes: int, mss: int = 1460):
        self.sim = sim
        self.total = total_bytes
        self.completion_time: Optional[float] = None
        self.start_time: Optional[float] = None

        self.sender: Optional[TcpSender] = None
        self.receiver: Optional[TcpReceiver] = None
        self._mss = mss

    def wire(self, sender_send: Callable[[bytes], None],
             receiver_send: Callable[[bytes], None]) -> None:
        self.sender = TcpSender(
            self.sim, sender_send, self.total, mss=self._mss,
            on_complete=self._done,
        )
        self.receiver = TcpReceiver(self.sim, receiver_send)

    def start(self) -> None:
        self.start_time = self.sim.now
        self.sender.start()

    def _done(self) -> None:
        self.completion_time = self.sim.now

    @property
    def completed(self) -> bool:
        return self.completion_time is not None

    @property
    def dct(self) -> Optional[float]:
        if self.completion_time is None or self.start_time is None:
            return None
        return self.completion_time - self.start_time
