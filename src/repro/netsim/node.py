"""Hosts and routers exchanging UDP-like datagrams over simulated links.

Addressing is deliberately simple: every interface carries a unique string
address (e.g. ``"client.0"``), and routers forward on the destination
address through static routes.  Hosts expose a socket-like API —
``bind(port, handler)`` and ``sendto(...)`` — which is what the QUIC and
TCP endpoints are built on.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

from .link import Link, Pipe
from .sim import Simulator

Handler = Callable[["Datagram"], None]


@dataclass
class Datagram:
    """A UDP-like datagram as it travels through the simulated network."""

    src_addr: str
    src_port: int
    dst_addr: str
    dst_port: int
    payload: bytes
    hops: int = 0
    #: ECN Congestion Experienced: set by a congested queue en route.
    ecn_ce: bool = False

    @property
    def size(self) -> int:
        return len(self.payload)

    def __repr__(self) -> str:
        return (
            f"<Datagram {self.src_addr}:{self.src_port} -> "
            f"{self.dst_addr}:{self.dst_port} {self.size}B>"
        )


@dataclass
class DatagramBurst:
    """A GSO/GRO-style train of datagrams traveling as ONE simulator event.

    Batched senders emit a whole pump's worth of datagrams for a path as
    a single burst; every hop then pays one route lookup and one event
    per *burst* instead of per datagram.  Loss, buffer admission and link
    statistics remain per segment (see ``Pipe.send_burst``), so drop
    patterns match unbatched runs."""

    segments: list

    @property
    def size(self) -> int:
        return sum(d.size for d in self.segments)

    def __repr__(self) -> str:
        return f"<DatagramBurst {len(self.segments)} segs {self.size}B>"


class Interface:
    """Attachment point of a node to one direction-pair of pipes."""

    def __init__(self, node: "Node", address: str, tx: Pipe, rx: Pipe):
        self.node = node
        self.address = address
        self.tx = tx
        rx.connect(self._on_receive)

    def send(self, dgram: Datagram) -> bool:
        return self.tx.send(dgram, dgram.size)

    def send_burst(self, burst: DatagramBurst) -> int:
        return self.tx.send_burst(burst)

    def _on_receive(self, dgram) -> None:
        if type(dgram) is DatagramBurst:
            self.node.receive_burst(dgram, self)
        else:
            self.node.receive(dgram, self)


class Node:
    """Base class for hosts and routers."""

    MAX_HOPS = 32

    def __init__(self, sim: Simulator, name: str):
        self.sim = sim
        self.name = name
        self.interfaces: list[Interface] = []

    def attach(self, link: Link, address: str, far_side: bool = False) -> Interface:
        """Attach to one end of ``link``; ``far_side`` selects the end."""
        tx, rx = (link.backward, link.forward) if far_side else (link.forward, link.backward)
        iface = Interface(self, address, tx, rx)
        self.interfaces.append(iface)
        return iface

    def receive(self, dgram: Datagram, iface: Interface) -> None:
        raise NotImplementedError

    def receive_burst(self, burst: DatagramBurst, iface: Interface) -> None:
        """Default: unroll the burst for nodes without a batched path."""
        for dgram in list(burst.segments):
            self.receive(dgram, iface)

    def interface_for_address(self, address: str) -> Optional[Interface]:
        for iface in self.interfaces:
            if iface.address == address:
                return iface
        return None


class Host(Node):
    """An end host with a UDP-socket-like interface.

    Multiple interfaces give the host multiple local addresses, which the
    multipath experiments use (the Figure-7 client reaches the server over
    R1 and R2 via distinct local addresses).
    """

    def __init__(self, sim: Simulator, name: str):
        super().__init__(sim, name)
        self._bindings: dict[int, Handler] = {}
        self._burst_bindings: dict[int, Callable[["DatagramBurst"], None]] = {}
        self.rx_datagrams = 0
        self.tx_datagrams = 0
        self.unrouted = 0

    def bind(self, port: int, handler: Handler,
             burst_handler: Optional[Callable[["DatagramBurst"], None]] = None,
             ) -> None:
        """Bind ``handler`` for per-datagram delivery; a GRO-capable
        endpoint may also register ``burst_handler`` to drain a whole
        :class:`DatagramBurst` per wakeup."""
        if port in self._bindings:
            raise ValueError(f"port {port} already bound on {self.name}")
        self._bindings[port] = handler
        if burst_handler is not None:
            self._burst_bindings[port] = burst_handler

    def unbind(self, port: int) -> None:
        self._bindings.pop(port, None)
        self._burst_bindings.pop(port, None)

    def sendto(
        self,
        payload: bytes,
        src_addr: str,
        src_port: int,
        dst_addr: str,
        dst_port: int,
    ) -> bool:
        """Send a datagram out of the interface owning ``src_addr``."""
        iface = self.interface_for_address(src_addr)
        if iface is None:
            raise ValueError(f"{self.name} has no interface {src_addr}")
        self.tx_datagrams += 1
        return iface.send(Datagram(src_addr, src_port, dst_addr, dst_port, payload))

    def send_burst(self, burst: DatagramBurst) -> int:
        """GSO-style send: the whole train leaves as one link event.
        All segments must share the source address (one route)."""
        src_addr = burst.segments[0].src_addr
        iface = self.interface_for_address(src_addr)
        if iface is None:
            raise ValueError(f"{self.name} has no interface {src_addr}")
        self.tx_datagrams += len(burst.segments)
        return iface.send_burst(burst)

    def receive(self, dgram: Datagram, iface: Interface) -> None:
        handler = self._bindings.get(dgram.dst_port)
        if handler is None:
            self.unrouted += 1
            return
        self.rx_datagrams += 1
        handler(dgram)

    def receive_burst(self, burst: DatagramBurst, iface: Interface) -> None:
        segments = burst.segments
        port = segments[0].dst_port
        if any(d.dst_port != port for d in segments):
            # Mixed destination ports (possible after splintering): fall
            # back to per-datagram demux.
            for dgram in segments:
                self.receive(dgram, iface)
            return
        burst_handler = self._burst_bindings.get(port)
        if burst_handler is not None:
            self.rx_datagrams += len(segments)
            burst_handler(burst)
            return
        handler = self._bindings.get(port)
        if handler is None:
            self.unrouted += len(segments)
            return
        for dgram in segments:
            self.rx_datagrams += 1
            handler(dgram)

    @property
    def addresses(self) -> list[str]:
        return [iface.address for iface in self.interfaces]


class Nat(Node):
    """An address-translating hop (NAPT) between one inside host and the
    outside network.

    Outbound datagrams get their source rewritten to the NAT's current
    external address and a per-flow external port; inbound datagrams are
    matched on destination port and rewritten back to the inside flow.
    :meth:`rebind` models the event QUIC's connection IDs exist to survive
    (§4.3 / RFC 9000 §9): the binding table is flushed and the external
    address changes generation, so the same inside flow reappears to the
    outside world from a brand-new source address and port.
    """

    def __init__(self, sim: Simulator, name: str,
                 external_prefix: str = "nat", port_base: int = 42000):
        super().__init__(sim, name)
        self.external_prefix = external_prefix
        self.port_base = port_base
        self.generation = 0
        self.inside: Optional[Interface] = None
        self.outside: Optional[Interface] = None
        self._forward: dict[tuple[str, int], int] = {}
        self._reverse: dict[int, tuple[str, int]] = {}
        self._next_port = port_base
        self.translated = 0
        self.dropped = 0
        self.rebinds = 0

    @property
    def external_addr(self) -> str:
        return f"{self.external_prefix}.{self.generation}"

    def attach_inside(self, link: Link, address: str = "",
                      far_side: bool = False) -> Interface:
        self.inside = self.attach(link, address or f"{self.name}.in", far_side)
        return self.inside

    def attach_outside(self, link: Link, far_side: bool = False) -> Interface:
        self.outside = self.attach(link, self.external_addr, far_side)
        return self.outside

    def rebind(self) -> None:
        """Flush all bindings and move to a fresh external address — the
        classic mid-connection NAT rebinding."""
        self._forward.clear()
        self._reverse.clear()
        self.generation += 1
        self._next_port = self.port_base + 1000 * self.generation
        if self.outside is not None:
            self.outside.address = self.external_addr
        self.rebinds += 1

    def _translate(self, dgram: Datagram, iface: Interface) -> Optional[Datagram]:
        """Rewrite one datagram, or None if the NAT drops it."""
        dgram.hops += 1
        if dgram.hops > self.MAX_HOPS:
            self.dropped += 1
            return None
        if iface is self.inside:
            key = (dgram.src_addr, dgram.src_port)
            port = self._forward.get(key)
            if port is None:
                port = self._next_port
                self._next_port += 1
                self._forward[key] = port
                self._reverse[port] = key
            self.translated += 1
            return Datagram(
                self.external_addr, port, dgram.dst_addr, dgram.dst_port,
                dgram.payload, hops=dgram.hops, ecn_ce=dgram.ecn_ce)
        key = self._reverse.get(dgram.dst_port)
        if key is None or dgram.dst_addr != self.external_addr:
            # No binding (e.g. a reply that outlived a rebind, or a
            # packet for a stale external address): silently dropped,
            # exactly like a real NAT.
            self.dropped += 1
            return None
        self.translated += 1
        return Datagram(
            dgram.src_addr, dgram.src_port, key[0], key[1],
            dgram.payload, hops=dgram.hops, ecn_ce=dgram.ecn_ce)

    def receive(self, dgram: Datagram, iface: Interface) -> None:
        out = self._translate(dgram, iface)
        if out is None:
            return
        target = self.outside if iface is self.inside else self.inside
        target.send(out)

    def receive_burst(self, burst: DatagramBurst, iface: Interface) -> None:
        """Translate each segment; survivors continue as one burst."""
        segments = [d for d in (self._translate(dgram, iface)
                                for dgram in burst.segments) if d is not None]
        if not segments:
            return
        target = self.outside if iface is self.inside else self.inside
        target.send_burst(DatagramBurst(segments))


class Router(Node):
    """A store-and-forward router with static routes on destination address.

    Routes may be exact addresses or ``prefix.*`` wildcards so one entry can
    cover all addresses of a multi-homed host.
    """

    def __init__(self, sim: Simulator, name: str):
        super().__init__(sim, name)
        self._routes: dict[str, int] = {}
        self.forwarded = 0
        self.unrouted = 0

    def add_route(self, dst: str, iface_index: int) -> None:
        self._routes[dst] = iface_index

    def _lookup(self, dst: str) -> Optional[int]:
        if dst in self._routes:
            return self._routes[dst]
        head, _, _ = dst.rpartition(".")
        while head:
            wild = head + ".*"
            if wild in self._routes:
                return self._routes[wild]
            head, _, _ = head.rpartition(".")
        return self._routes.get("*")

    def receive(self, dgram: Datagram, iface: Interface) -> None:
        dgram.hops += 1
        if dgram.hops > self.MAX_HOPS:
            self.unrouted += 1
            return
        index = self._lookup(dgram.dst_addr)
        if index is None or index >= len(self.interfaces):
            self.unrouted += 1
            return
        self.forwarded += 1
        self.interfaces[index].send(dgram)

    def receive_burst(self, burst: DatagramBurst, iface: Interface) -> None:
        """Forward the whole burst with ONE route lookup (the GSO win)."""
        segments = burst.segments
        first = segments[0]
        if any(d.dst_addr != first.dst_addr for d in segments):
            # Mixed destinations (possible after splintering): unroll.
            for dgram in segments:
                self.receive(dgram, iface)
            return
        for dgram in segments:
            dgram.hops += 1
        if first.hops > self.MAX_HOPS:
            self.unrouted += len(segments)
            return
        index = self._lookup(first.dst_addr)
        if index is None or index >= len(self.interfaces):
            self.unrouted += len(segments)
            return
        self.forwarded += len(segments)
        self.interfaces[index].send_burst(burst)
