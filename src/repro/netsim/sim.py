"""Discrete-event simulation kernel.

The whole evaluation of the paper runs on a lab testbed (Figure 7) shaped
with NetEm/HTB.  This module provides the equivalent substrate: a
deterministic event loop with cancellable timers on which links, routers,
hosts and transport endpoints are built.
"""

from __future__ import annotations

import heapq
import itertools
import warnings
from typing import Any, Callable, Optional


class Event:
    """A scheduled callback. Returned by :meth:`Simulator.schedule`.

    Events compare by (time, sequence) so simultaneous events fire in
    scheduling order, which keeps runs fully deterministic.
    """

    __slots__ = ("time", "seq", "fn", "args", "cancelled", "_sim", "_queued",
                 "_far")

    def __init__(self, time: float, seq: int, fn: Callable[..., Any], args: tuple,
                 sim: Optional["Simulator"] = None):
        self.time = time
        self.seq = seq
        self.fn = fn
        self.args = args
        self.cancelled = False
        self._sim = sim  # owner, notified on cancel for O(1) accounting
        self._queued = False
        self._far = False  # True while parked in the timer wheel

    def cancel(self) -> None:
        """Prevent the event from firing. Safe to call more than once."""
        if self.cancelled:
            return
        self.cancelled = True
        if self._sim is not None and self._queued:
            self._sim._on_cancel(self)

    def __lt__(self, other: "Event") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)

    def __repr__(self) -> str:
        state = "cancelled" if self.cancelled else "pending"
        return f"<Event t={self.time:.6f} {self.fn!r} {state}>"


class TimerWheel:
    """A hashed hierarchical timing wheel with an overflow heap.

    The heap-only event queue degrades when thousands of connections each
    keep rearming long-range alarms (cancel + reschedule per packet):
    every dead timer sits in the heap until compaction sweeps it, and the
    heap's log factor grows with the standing timer population.  The
    wheel gives O(1) insertion and bins events by quantized expiry tick
    instead:

    * level 0 slots are one tick (``tick`` seconds) wide, level ``L``
      slots are ``2**(bits*L)`` ticks wide — events cascade down a level
      as their slot comes due, so each event is touched at most
      ``levels`` times;
    * slots live in per-level dicts keyed by absolute slot index (hashed
      wheel), so idle stretches cost nothing and there is no wrap-around
      bookkeeping; a per-level heap of occupied slot indices finds the
      next deadline without scanning;
    * events past the top horizon wait in a plain overflow heap;
    * events due at or before the current tick sit in the ``_due`` heap,
      ordered by exact ``(time, seq)`` — quantization never reorders
      delivery, because slots are only an index, never a fire order.

    Cancellation just marks the event; dead entries are dropped when
    their slot drains, or all at once by :meth:`compact` when garbage
    dominates (the owning :class:`Simulator` decides when).
    """

    __slots__ = ("_tick", "_bits", "_levels", "_slots", "_occupied",
                 "_overflow", "_due", "_now_tick", "_len")

    def __init__(self, tick: float = 1e-3, bits: int = 10, levels: int = 3):
        self._tick = tick
        self._bits = bits
        self._levels = levels
        self._slots: list[dict[int, list[Event]]] = [{} for _ in range(levels)]
        self._occupied: list[list[int]] = [[] for _ in range(levels)]
        self._overflow: list[Event] = []
        self._due: list[Event] = []
        self._now_tick = 0
        self._len = 0  # all queued entries, live and cancelled

    def __len__(self) -> int:
        return self._len

    def push(self, ev: Event) -> None:
        """Insert an event (O(1) amortized)."""
        self._len += 1
        tick = int(ev.time / self._tick)
        delta = tick - self._now_tick
        if delta <= 0:
            heapq.heappush(self._due, ev)
            return
        bits = self._bits
        for level in range(self._levels):
            if delta < 1 << (bits * (level + 1)):
                slot = tick >> (bits * level)
                bucket = self._slots[level].get(slot)
                if bucket is None:
                    self._slots[level][slot] = [ev]
                    heapq.heappush(self._occupied[level], slot)
                else:
                    bucket.append(ev)
                return
        heapq.heappush(self._overflow, ev)

    def pop(self) -> Optional[Event]:
        """Remove and return the next live event in (time, seq) order."""
        while True:
            due = self._due
            while due:
                ev = heapq.heappop(due)
                self._len -= 1
                if not ev.cancelled:
                    return ev
            if not self._advance():
                return None

    def _advance(self) -> bool:
        """Move the earliest occupied slot (or overflow batch) into the
        due heap, cascading coarse slots down.  False when empty."""
        bits = self._bits
        best_level = -1
        best_start = None
        for level in range(self._levels):
            occ = self._occupied[level]
            slots = self._slots[level]
            while occ and occ[0] not in slots:
                heapq.heappop(occ)  # stale index (drained or compacted)
            if occ:
                start = occ[0] << (bits * level)
                if best_start is None or start < best_start:
                    best_start = start
                    best_level = level
        overflow = self._overflow
        while overflow and overflow[0].cancelled:
            heapq.heappop(overflow)
            self._len -= 1
        if overflow:
            tick = int(overflow[0].time / self._tick)
            if best_start is None or tick < best_start:
                # Reinsert the overflow head relative to its own tick; it
                # lands in a wheel level (or straight in the due heap).
                ev = heapq.heappop(overflow)
                self._len -= 1
                self._now_tick = max(self._now_tick, tick)
                self.push(ev)
                return True
        if best_start is None:
            return False
        occ = self._occupied[best_level]
        slot = heapq.heappop(occ)
        bucket = self._slots[best_level].pop(slot)
        self._now_tick = max(self._now_tick, best_start)
        if best_level == 0:
            for ev in bucket:
                if ev.cancelled:
                    self._len -= 1
                else:
                    heapq.heappush(self._due, ev)
        else:
            # Cascade: redistribute into finer levels / the due heap.
            self._len -= len(bucket)
            for ev in bucket:
                if not ev.cancelled:
                    self.push(ev)
        return True

    def next_time(self) -> Optional[float]:
        """A lower bound (seconds) on the earliest entry, or ``None``.

        Slot starts are used for binned events, exact times for due and
        overflow entries, so the bound is cheap and never *over*estimates
        — callers compare it against another queue's head and only pay
        for an exact :meth:`pop` when the wheel might win.
        """
        if self._len == 0:
            return None
        if self._due:
            return self._due[0].time
        bits = self._bits
        best: Optional[int] = None
        for level in range(self._levels):
            occ = self._occupied[level]
            slots = self._slots[level]
            while occ and occ[0] not in slots:
                heapq.heappop(occ)
            if occ:
                start = occ[0] << (bits * level)
                if best is None or start < best:
                    best = start
        t = None if best is None else best * self._tick
        overflow = self._overflow
        while overflow and overflow[0].cancelled:
            heapq.heappop(overflow)
            self._len -= 1
        if overflow and (t is None or overflow[0].time < t):
            t = overflow[0].time
        return t

    def peek(self) -> Optional[Event]:
        """The next live event without (observably) removing it."""
        ev = self.pop()
        if ev is not None:
            self.push(ev)
        return ev

    def compact(self) -> None:
        """Drop every cancelled entry (rebuilds all bins in place)."""
        live: list[Event] = []
        for ev in self._due:
            if not ev.cancelled:
                live.append(ev)
        for slots in self._slots:
            for bucket in slots.values():
                live.extend(ev for ev in bucket if not ev.cancelled)
        live.extend(ev for ev in self._overflow if not ev.cancelled)
        self._due = []
        self._overflow = []
        for level in range(self._levels):
            self._slots[level] = {}
            self._occupied[level] = []
        self._len = 0
        for ev in live:
            self.push(ev)


#: Delays below this stay on the binary heap (the C-accelerated hot path
#: for packet deliveries and loss alarms); longer timers — idle and drain
#: alarms by the thousand on a busy server — park in the hierarchical
#: wheel, where a cancelled timer is O(1) garbage in a far slot instead
#: of heap ballast that every nearby push/pop has to sift around.
NEAR_HORIZON = 0.25


class Simulator:
    """A deterministic discrete-event simulator.

    Typical usage::

        sim = Simulator()
        sim.schedule(1.0, print, "hello")
        sim.run()

    Internally the queue is split in two: events due within
    :data:`NEAR_HORIZON` seconds live on a binary heap, far timers on a
    :class:`TimerWheel`.  ``_pop`` merges the two by exact ``(time,
    seq)`` order, so the split is invisible — determinism and fire order
    are identical to a single queue.
    """

    def __init__(self, metrics=None) -> None:
        self.now: float = 0.0
        self._heap: list[Event] = []
        self._wheel = TimerWheel()
        self._seq = itertools.count()
        self._running = False
        self._live = 0  # non-cancelled events currently queued
        self._heap_garbage = 0   # cancelled entries still on the heap
        self._wheel_garbage = 0  # cancelled entries still in the wheel
        # Cached lower bound on the wheel's earliest entry (None = stale).
        # Keeps the near-event fast path from rescanning wheel levels on
        # every pop while thousands of far timers are standing.
        self._wheel_bound: Optional[float] = None
        self.events_fired = 0  # total events executed (observability)
        #: Events *saved* by GSO/GRO batching: each n-segment burst rides
        #: one delivery event where the unbatched path would schedule n.
        self.events_coalesced = 0
        #: Optional :class:`~repro.trace.metrics.MetricsRegistry`; run
        #: loops fold their event counts into it on exit (never per
        #: event, so the loop itself stays metric-free).
        self.metrics = metrics

    def note_coalesced(self, saved: int) -> None:
        """Record ``saved`` events avoided by delivering a burst as one."""
        self.events_coalesced += saved
        if self.metrics is not None and saved:
            self.metrics.counter("sim.events_coalesced").inc(saved)

    def _account(self, fired: int) -> None:
        """Fold a run's event count into the counters / registry."""
        self.events_fired += fired
        if self.metrics is not None:
            if fired:
                self.metrics.counter("sim.events_fired").inc(fired)
            self.metrics.gauge("sim.pending").set(float(self.pending()))
            self.metrics.gauge("sim.now_s").set(self.now)

    def schedule(self, delay: float, fn: Callable[..., Any], *args: Any) -> Event:
        """Schedule ``fn(*args)`` to run ``delay`` seconds from now."""
        if delay < 0:
            raise ValueError(f"negative delay: {delay}")
        ev = Event(self.now + delay, next(self._seq), fn, args, sim=self)
        ev._queued = True
        self._live += 1
        if delay < NEAR_HORIZON:
            heapq.heappush(self._heap, ev)
        else:
            ev._far = True
            self._wheel.push(ev)
            wb = self._wheel_bound
            if wb is not None and ev.time < wb:
                self._wheel_bound = ev.time
        return ev

    def schedule_at(self, time: float, fn: Callable[..., Any], *args: Any) -> Event:
        """Schedule ``fn(*args)`` at an absolute simulation time."""
        return self.schedule(max(0.0, time - self.now), fn, *args)

    def pending(self) -> int:
        """Number of non-cancelled events still queued (O(1))."""
        return self._live

    def _on_cancel(self, ev: Event) -> None:
        """Counter upkeep when a queued event is cancelled; compacts
        whichever queue the garbage lives in once it outnumbers the live
        entries there."""
        self._live -= 1
        if ev._far:
            self._wheel_garbage += 1
            if (self._wheel_garbage * 2 > len(self._wheel)
                    and len(self._wheel) > 8):
                self._wheel.compact()
                self._wheel_garbage = 0
                self._wheel_bound = None
        else:
            self._heap_garbage += 1
            if (self._heap_garbage * 2 > len(self._heap)
                    and len(self._heap) > 8):
                self._heap = [e for e in self._heap if not e.cancelled]
                heapq.heapify(self._heap)
                self._heap_garbage = 0

    def _pop(self) -> Optional[Event]:
        """Pop the next live event across both queues in exact
        ``(time, seq)`` order, dropping lazily-deleted entries."""
        heap = self._heap
        wheel = self._wheel
        while True:
            while heap and heap[0].cancelled:
                heapq.heappop(heap)
                self._heap_garbage -= 1
            if len(wheel):
                wt = self._wheel_bound
                if wt is None:
                    wt = self._wheel_bound = wheel.next_time()
                if wt is not None and (not heap or wt <= heap[0].time):
                    ev = wheel.pop()
                    self._wheel_bound = None
                    if ev is None:  # the wheel held only garbage
                        continue
                    if heap and heap[0] < ev:
                        # The bound undersold the wheel: the heap head is
                        # actually first.  The extracted event rides the
                        # heap from here on (it is near-term now anyway).
                        ev._far = False
                        heapq.heappush(heap, ev)
                        continue
                    ev._queued = False
                    ev._far = False
                    self._live -= 1
                    return ev
            if not heap:
                return None
            ev = heapq.heappop(heap)
            ev._queued = False
            self._live -= 1
            return ev

    def _push_back(self, ev: Event) -> None:
        """Requeue a popped-but-not-yet-due event (run/run_until cutoffs)."""
        ev._queued = True
        self._live += 1
        if ev.time - self.now < NEAR_HORIZON:
            heapq.heappush(self._heap, ev)
        else:
            ev._far = True
            self._wheel.push(ev)
            wb = self._wheel_bound
            if wb is not None and ev.time < wb:
                self._wheel_bound = ev.time

    def _peek(self) -> Optional[Event]:
        """The next live event without (observably) removing it."""
        ev = self._pop()
        if ev is not None:
            self._push_back(ev)
        return ev

    def step(self) -> bool:
        """Run the next event. Returns False when the queue is empty."""
        ev = self._pop()
        if ev is None:
            return False
        self.now = ev.time
        ev.fn(*ev.args)
        self._account(1)
        return True

    def _on_limit(self, max_events: int, on_max_events: str) -> None:
        """Report hitting the runaway guard with enough context to debug
        *what* was still spinning (current time, queue depth, next event)."""
        head = self._peek()
        msg = (
            f"simulation exceeded {max_events} events at t={self.now:.6f} "
            f"with {self.pending()} events still pending"
            + (f"; next: {head!r}" if head is not None else "")
        )
        if on_max_events == "warn":
            warnings.warn(msg, RuntimeWarning, stacklevel=3)
            return
        raise RuntimeError(msg)

    def run(
        self,
        until: Optional[float] = None,
        max_events: int = 50_000_000,
        on_max_events: str = "raise",
    ) -> None:
        """Run events until the queue drains or ``until`` (absolute time).

        ``max_events`` is a runaway guard.  ``on_max_events`` selects what
        hitting it does: ``"raise"`` (default) raises RuntimeError,
        ``"warn"`` emits a RuntimeWarning and returns with the remaining
        events still queued, so callers can inspect the stuck state.
        """
        if on_max_events not in ("raise", "warn"):
            raise ValueError(f"on_max_events must be 'raise' or 'warn', "
                             f"got {on_max_events!r}")
        count = 0
        try:
            while True:
                ev = self._pop()
                if ev is None:
                    break
                if until is not None and ev.time > until:
                    self._push_back(ev)
                    self.now = until
                    return
                self.now = ev.time
                ev.fn(*ev.args)
                count += 1
                if count >= max_events:
                    self._on_limit(max_events, on_max_events)
                    return
            if until is not None:
                self.now = max(self.now, until)
        finally:
            self._account(count)

    def run_until(
        self,
        predicate: Callable[[], bool],
        timeout: float = 3600.0,
        max_events: int = 50_000_000,
        on_max_events: str = "raise",
    ) -> bool:
        """Run until ``predicate()`` is true. Returns whether it became true.

        ``timeout`` is in absolute simulated seconds from the current time.
        ``on_max_events`` behaves as in :meth:`run`.
        """
        if on_max_events not in ("raise", "warn"):
            raise ValueError(f"on_max_events must be 'raise' or 'warn', "
                             f"got {on_max_events!r}")
        deadline = self.now + timeout
        count = 0
        fired = 0
        if predicate():
            return True
        try:
            while True:
                ev = self._pop()
                if ev is None:
                    break
                if ev.time > deadline:
                    # Put it back: the caller may keep running later.
                    self._push_back(ev)
                    self.now = deadline
                    return predicate()
                self.now = ev.time
                ev.fn(*ev.args)
                fired += 1
                if predicate():
                    return True
                count += 1
                if count >= max_events:
                    self._on_limit(max_events, on_max_events)
                    return predicate()
            return predicate()
        finally:
            self._account(fired)
