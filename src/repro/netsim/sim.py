"""Discrete-event simulation kernel.

The whole evaluation of the paper runs on a lab testbed (Figure 7) shaped
with NetEm/HTB.  This module provides the equivalent substrate: a
deterministic event loop with cancellable timers on which links, routers,
hosts and transport endpoints are built.
"""

from __future__ import annotations

import heapq
import itertools
import warnings
from typing import Any, Callable, Optional


class Event:
    """A scheduled callback. Returned by :meth:`Simulator.schedule`.

    Events compare by (time, sequence) so simultaneous events fire in
    scheduling order, which keeps runs fully deterministic.
    """

    __slots__ = ("time", "seq", "fn", "args", "cancelled", "_sim", "_queued")

    def __init__(self, time: float, seq: int, fn: Callable[..., Any], args: tuple,
                 sim: Optional["Simulator"] = None):
        self.time = time
        self.seq = seq
        self.fn = fn
        self.args = args
        self.cancelled = False
        self._sim = sim  # owner, notified on cancel for O(1) accounting
        self._queued = False

    def cancel(self) -> None:
        """Prevent the event from firing. Safe to call more than once."""
        if self.cancelled:
            return
        self.cancelled = True
        if self._sim is not None and self._queued:
            self._sim._on_cancel()

    def __lt__(self, other: "Event") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)

    def __repr__(self) -> str:
        state = "cancelled" if self.cancelled else "pending"
        return f"<Event t={self.time:.6f} {self.fn!r} {state}>"


class Simulator:
    """A deterministic discrete-event simulator.

    Typical usage::

        sim = Simulator()
        sim.schedule(1.0, print, "hello")
        sim.run()
    """

    def __init__(self, metrics=None) -> None:
        self.now: float = 0.0
        self._queue: list[Event] = []
        self._seq = itertools.count()
        self._running = False
        self._live = 0  # non-cancelled events currently queued
        self._cancelled = 0  # cancelled events awaiting lazy deletion
        self.events_fired = 0  # total events executed (observability)
        #: Optional :class:`~repro.trace.metrics.MetricsRegistry`; run
        #: loops fold their event counts into it on exit (never per
        #: event, so the loop itself stays metric-free).
        self.metrics = metrics

    def _account(self, fired: int) -> None:
        """Fold a run's event count into the counters / registry."""
        self.events_fired += fired
        if self.metrics is not None:
            if fired:
                self.metrics.counter("sim.events_fired").inc(fired)
            self.metrics.gauge("sim.pending").set(float(self.pending()))
            self.metrics.gauge("sim.now_s").set(self.now)

    def schedule(self, delay: float, fn: Callable[..., Any], *args: Any) -> Event:
        """Schedule ``fn(*args)`` to run ``delay`` seconds from now."""
        if delay < 0:
            raise ValueError(f"negative delay: {delay}")
        ev = Event(self.now + delay, next(self._seq), fn, args, sim=self)
        ev._queued = True
        heapq.heappush(self._queue, ev)
        self._live += 1
        return ev

    def schedule_at(self, time: float, fn: Callable[..., Any], *args: Any) -> Event:
        """Schedule ``fn(*args)`` at an absolute simulation time."""
        return self.schedule(max(0.0, time - self.now), fn, *args)

    def pending(self) -> int:
        """Number of non-cancelled events still queued (O(1))."""
        return self._live

    def _on_cancel(self) -> None:
        """Counter upkeep when a queued event is cancelled; compacts the
        heap once cancelled entries outnumber live ones."""
        self._live -= 1
        self._cancelled += 1
        if self._cancelled * 2 > len(self._queue) and len(self._queue) > 8:
            self._queue = [ev for ev in self._queue if not ev.cancelled]
            heapq.heapify(self._queue)
            self._cancelled = 0

    def _pop(self) -> Optional[Event]:
        """Pop the next live event, dropping lazily-deleted entries."""
        while self._queue:
            ev = heapq.heappop(self._queue)
            if ev.cancelled:
                self._cancelled -= 1
                continue
            ev._queued = False
            self._live -= 1
            return ev
        return None

    def _push_back(self, ev: Event) -> None:
        """Requeue a popped-but-not-yet-due event (run/run_until cutoffs)."""
        ev._queued = True
        self._live += 1
        heapq.heappush(self._queue, ev)

    def step(self) -> bool:
        """Run the next event. Returns False when the queue is empty."""
        ev = self._pop()
        if ev is None:
            return False
        self.now = ev.time
        ev.fn(*ev.args)
        self._account(1)
        return True

    def _on_limit(self, max_events: int, on_max_events: str) -> None:
        """Report hitting the runaway guard with enough context to debug
        *what* was still spinning (current time, queue depth, next event)."""
        head = next((ev for ev in self._queue if not ev.cancelled), None)
        msg = (
            f"simulation exceeded {max_events} events at t={self.now:.6f} "
            f"with {self.pending()} events still pending"
            + (f"; next: {head!r}" if head is not None else "")
        )
        if on_max_events == "warn":
            warnings.warn(msg, RuntimeWarning, stacklevel=3)
            return
        raise RuntimeError(msg)

    def run(
        self,
        until: Optional[float] = None,
        max_events: int = 50_000_000,
        on_max_events: str = "raise",
    ) -> None:
        """Run events until the queue drains or ``until`` (absolute time).

        ``max_events`` is a runaway guard.  ``on_max_events`` selects what
        hitting it does: ``"raise"`` (default) raises RuntimeError,
        ``"warn"`` emits a RuntimeWarning and returns with the remaining
        events still queued, so callers can inspect the stuck state.
        """
        if on_max_events not in ("raise", "warn"):
            raise ValueError(f"on_max_events must be 'raise' or 'warn', "
                             f"got {on_max_events!r}")
        count = 0
        try:
            while True:
                ev = self._pop()
                if ev is None:
                    break
                if until is not None and ev.time > until:
                    self._push_back(ev)
                    self.now = until
                    return
                self.now = ev.time
                ev.fn(*ev.args)
                count += 1
                if count >= max_events:
                    self._on_limit(max_events, on_max_events)
                    return
            if until is not None:
                self.now = max(self.now, until)
        finally:
            self._account(count)

    def run_until(
        self,
        predicate: Callable[[], bool],
        timeout: float = 3600.0,
        max_events: int = 50_000_000,
        on_max_events: str = "raise",
    ) -> bool:
        """Run until ``predicate()`` is true. Returns whether it became true.

        ``timeout`` is in absolute simulated seconds from the current time.
        ``on_max_events`` behaves as in :meth:`run`.
        """
        if on_max_events not in ("raise", "warn"):
            raise ValueError(f"on_max_events must be 'raise' or 'warn', "
                             f"got {on_max_events!r}")
        deadline = self.now + timeout
        count = 0
        fired = 0
        if predicate():
            return True
        try:
            while True:
                ev = self._pop()
                if ev is None:
                    break
                if ev.time > deadline:
                    # Put it back: the caller may keep running later.
                    self._push_back(ev)
                    self.now = deadline
                    return predicate()
                self.now = ev.time
                ev.fn(*ev.args)
                fired += 1
                if predicate():
                    return True
                count += 1
                if count >= max_events:
                    self._on_limit(max_events, on_max_events)
                    return predicate()
            return predicate()
        finally:
            self._account(fired)
