"""Discrete-event network simulator (the paper's lab testbed, Figure 7)."""

from .faults import FaultInjector, FaultStats
from .link import IPV4_UDP_OVERHEAD, Link, Pipe, SeededLossGen
from .node import Datagram, Host, Interface, Node, Router
from .sim import Event, Simulator
from .tcp import TcpBulkTransfer, TcpReceiver, TcpSender
from .topology import Figure7Topology, PathParams, symmetric_topology

__all__ = [
    "Datagram",
    "Event",
    "FaultInjector",
    "FaultStats",
    "Figure7Topology",
    "Host",
    "IPV4_UDP_OVERHEAD",
    "Interface",
    "Link",
    "Node",
    "PathParams",
    "Pipe",
    "Router",
    "SeededLossGen",
    "Simulator",
    "TcpBulkTransfer",
    "TcpReceiver",
    "TcpSender",
    "symmetric_topology",
]
