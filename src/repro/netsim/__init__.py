"""Discrete-event network simulator (the paper's lab testbed, Figure 7)."""

from .faults import FaultInjector, FaultStats
from .link import IPV4_UDP_OVERHEAD, Link, Pipe, SeededLossGen
from .node import Datagram, DatagramBurst, Host, Interface, Nat, Node, Router
from .sim import Event, Simulator
from .tcp import TcpBulkTransfer, TcpReceiver, TcpSender
from .topology import (
    Figure7Topology,
    NatTopology,
    PathParams,
    nat_topology,
    symmetric_topology,
)

__all__ = [
    "Datagram",
    "DatagramBurst",
    "Event",
    "FaultInjector",
    "FaultStats",
    "Figure7Topology",
    "Host",
    "IPV4_UDP_OVERHEAD",
    "Interface",
    "Link",
    "Nat",
    "NatTopology",
    "Node",
    "PathParams",
    "Pipe",
    "Router",
    "SeededLossGen",
    "Simulator",
    "TcpBulkTransfer",
    "TcpReceiver",
    "TcpSender",
    "nat_topology",
    "symmetric_topology",
]
