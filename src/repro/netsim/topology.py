"""The Figure-7 experimental topology.

::

            R1 --{d1, bw1, l1}--\\
    Client--|                    R3 --- Server
            R2 --{d2, bw2, l2}--/

The client is dual-homed (addresses ``client.0`` via R1 and ``client.1``
via R2); the server has a single address ``server.0``.  Single-path
experiments use only the top path, multipath experiments use both, matching
the paper's evaluation setup.
"""

from __future__ import annotations

from dataclasses import dataclass

from .link import Link
from .node import Host, Nat, Router
from .sim import Simulator

#: Bandwidth of the access/LAN segments (client-R1/R2, R3-server): fast
#: enough never to be the bottleneck, mirroring the testbed's 1 Gbps NICs.
LAN_BANDWIDTH = 1_000_000_000.0
LAN_DELAY = 0.0001


@dataclass
class PathParams:
    """One bottleneck path: one-way delay (s), bandwidth (bit/s), loss."""

    delay: float
    bandwidth: float
    loss: float = 0.0

    @classmethod
    def from_paper_units(cls, d_ms: float, bw_mbps: float, loss_pct: float = 0.0) -> "PathParams":
        """Build from the paper's units: ms, Mbps and percent."""
        return cls(delay=d_ms / 1000.0, bandwidth=bw_mbps * 1_000_000.0,
                   loss=loss_pct / 100.0)


class Figure7Topology:
    """Builds the two-path lab network used throughout Section 4."""

    def __init__(
        self,
        sim: Simulator,
        path1: PathParams,
        path2: PathParams,
        seed: int = 0,
        buffer_bytes: int = 64 * 1024,
    ):
        self.sim = sim
        self.client = Host(sim, "client")
        self.server = Host(sim, "server")
        self.r1 = Router(sim, "R1")
        self.r2 = Router(sim, "R2")
        self.r3 = Router(sim, "R3")

        # Access links (never the bottleneck).
        l_c_r1 = Link(sim, LAN_DELAY, LAN_BANDWIDTH, buffer_bytes=buffer_bytes)
        l_c_r2 = Link(sim, LAN_DELAY, LAN_BANDWIDTH, buffer_bytes=buffer_bytes)
        l_r3_s = Link(sim, LAN_DELAY, LAN_BANDWIDTH, buffer_bytes=buffer_bytes)
        # Bottleneck links with the paper's {d, bw, l} parameters.
        l_r1_r3 = Link(sim, path1.delay, path1.bandwidth, path1.loss,
                       seed=seed * 10 + 1, buffer_bytes=buffer_bytes)
        l_r2_r3 = Link(sim, path2.delay, path2.bandwidth, path2.loss,
                       seed=seed * 10 + 2, buffer_bytes=buffer_bytes)
        self.path_links = (l_r1_r3, l_r2_r3)

        self.client.attach(l_c_r1, "client.0")
        self.r1.attach(l_c_r1, "r1.c", far_side=True)
        self.client.attach(l_c_r2, "client.1")
        self.r2.attach(l_c_r2, "r2.c", far_side=True)

        self.r1.attach(l_r1_r3, "r1.up")
        self.r3.attach(l_r1_r3, "r3.p1", far_side=True)
        self.r2.attach(l_r2_r3, "r2.up")
        self.r3.attach(l_r2_r3, "r3.p2", far_side=True)

        self.r3.attach(l_r3_s, "r3.s")
        self.server.attach(l_r3_s, "server.0", far_side=True)

        # R1/R2: iface 0 faces client, iface 1 faces R3.
        self.r1.add_route("client.*", 0)
        self.r1.add_route("*", 1)
        self.r2.add_route("client.*", 0)
        self.r2.add_route("*", 1)
        # R3: iface 0 = path1 (R1), iface 1 = path2 (R2), iface 2 = server.
        self.r3.add_route("client.0", 0)
        self.r3.add_route("client.1", 1)
        self.r3.add_route("server.*", 2)

    @property
    def client_addresses(self) -> list[str]:
        return ["client.0", "client.1"]

    @property
    def server_address(self) -> str:
        return "server.0"


def symmetric_topology(
    sim: Simulator,
    d_ms: float,
    bw_mbps: float,
    loss_pct: float = 0.0,
    seed: int = 0,
    buffer_bytes: int = 64 * 1024,
) -> Figure7Topology:
    """Topology with both paths sharing {d, bw, l}, the paper's default
    (``d2 = d1, bw2 = bw1, l2 = l1``)."""
    params = PathParams.from_paper_units(d_ms, bw_mbps, loss_pct)
    return Figure7Topology(sim, params, params, seed=seed, buffer_bytes=buffer_bytes)


@dataclass
class NatTopology:
    """``client --(access)-- NAT --(wan bottleneck)-- server``."""

    client: Host
    nat: Nat
    server: Host
    access: Link
    wan: Link


def nat_topology(
    sim: Simulator,
    d_ms: float = 10.0,
    bw_mbps: float = 10.0,
    loss_pct: float = 0.0,
    seed: int = 0,
    buffer_bytes: int = 64 * 1024,
) -> NatTopology:
    """A single-path topology with an address-translating hop: the client
    sits behind a :class:`~repro.netsim.node.Nat`, so a scheduled
    ``rebind()`` flaps the connection's externally visible source address
    mid-transfer (the RFC 9000 §9 migration scenario)."""
    params = PathParams.from_paper_units(d_ms, bw_mbps, loss_pct)
    client = Host(sim, "client")
    server = Host(sim, "server")
    nat = Nat(sim, "nat")
    access = Link(sim, LAN_DELAY, LAN_BANDWIDTH, buffer_bytes=buffer_bytes)
    wan = Link(sim, params.delay, params.bandwidth, params.loss,
               seed=seed * 10 + 1, buffer_bytes=buffer_bytes)
    client.attach(access, "client.0")
    nat.attach_inside(access, far_side=True)
    nat.attach_outside(wan)
    server.attach(wan, "server.0", far_side=True)
    return NatTopology(client=client, nat=nat, server=server,
                       access=access, wan=wan)
