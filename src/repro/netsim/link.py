"""Link model: bandwidth, propagation delay, drop-tail buffer, seeded loss.

Reproduces the Figure-7 testbed links, which the paper shapes with NetEm
(delay) and HTB (rate) and a *seeded* random loss generator so that an
experiment replays the same loss pattern across runs.
"""

from __future__ import annotations

import random
from typing import Callable, Optional

from .sim import Simulator

#: Extra bytes a datagram occupies on the wire (IPv4 20 + UDP 8), matching
#: the paper's accounting of the 44-byte VPN overhead over IPv4.
IPV4_UDP_OVERHEAD = 28


class SeededLossGen:
    """Bernoulli packet-loss generator with a reproducible seed.

    The paper: "Losses are generated using a seeded random loss generator
    attached to the routers. This allows fair performance comparisons as the
    same loss pattern is applied when an experiment is replayed."
    """

    def __init__(self, rate: float, seed: int = 0):
        if not 0.0 <= rate <= 1.0:
            raise ValueError(f"loss rate must be within [0, 1]: {rate}")
        self.rate = rate
        self._rng = random.Random(seed)
        self.drops = 0
        self.passed = 0

    def should_drop(self) -> bool:
        # Draw even when rate == 0 so that enabling losses does not shift
        # the random sequence of other generators.
        drop = self._rng.random() < self.rate
        if drop:
            self.drops += 1
        else:
            self.passed += 1
        return drop


class LinkStats:
    """Counters kept by each unidirectional pipe."""

    __slots__ = ("tx_packets", "tx_bytes", "dropped_buffer", "dropped_loss")

    def __init__(self) -> None:
        self.tx_packets = 0
        self.tx_bytes = 0
        self.dropped_buffer = 0
        self.dropped_loss = 0


class Pipe:
    """One direction of a link: rate limiter + FIFO buffer + delay + loss.

    Serialization is modelled exactly: a packet of ``size`` bytes occupies
    the transmitter for ``size * 8 / bandwidth`` seconds; packets arriving
    while the transmitter is busy queue in a byte-limited drop-tail buffer.
    """

    def __init__(
        self,
        sim: Simulator,
        delay: float,
        bandwidth: float,
        loss: Optional[SeededLossGen] = None,
        buffer_bytes: int = 64 * 1024,
        overhead: int = IPV4_UDP_OVERHEAD,
        jitter: float = 0.0,
        jitter_seed: int = 0,
        ecn_threshold: Optional[int] = None,
    ):
        """``jitter`` adds a seeded uniform [0, jitter] extra delay per
        packet (NetEm's delay variation); enough jitter reorders packets,
        which QUIC must tolerate.

        ``ecn_threshold`` enables ECN: packets enqueued while the buffer
        holds more than this many bytes get their CE codepoint set instead
        of waiting for a drop (a simple step-marking AQM)."""
        if delay < 0:
            raise ValueError("delay must be >= 0")
        if bandwidth <= 0:
            raise ValueError("bandwidth must be > 0 bits/s")
        if jitter < 0:
            raise ValueError("jitter must be >= 0")
        self.sim = sim
        self.delay = delay
        self.bandwidth = bandwidth
        self.loss = loss
        self.buffer_bytes = buffer_bytes
        self.overhead = overhead
        self.jitter = jitter
        self._jitter_rng = random.Random(jitter_seed) if jitter > 0 else None
        self.ecn_threshold = ecn_threshold
        self.ecn_marked = 0
        self.stats = LinkStats()
        self._queue: list[tuple[object, int]] = []
        self._queued_bytes = 0
        self._busy = False
        self._deliver: Optional[Callable[[object], None]] = None

    def connect(self, deliver: Callable[[object], None]) -> None:
        """Set the receive callback at the far end of the pipe."""
        self._deliver = deliver

    @property
    def queued_bytes(self) -> int:
        return self._queued_bytes

    def send(self, packet: object, size: int) -> bool:
        """Enqueue ``packet`` whose payload is ``size`` bytes.

        Returns False if the packet was dropped (buffer overflow or random
        loss at ingress).
        """
        if self._deliver is None:
            raise RuntimeError("pipe is not connected")
        wire_size = size + self.overhead
        if self.loss is not None and self.loss.should_drop():
            self.stats.dropped_loss += 1
            return False
        if self._queued_bytes + wire_size > self.buffer_bytes:
            self.stats.dropped_buffer += 1
            return False
        if (
            self.ecn_threshold is not None
            and self._queued_bytes > self.ecn_threshold
            and hasattr(packet, "ecn_ce")
        ):
            packet.ecn_ce = True
            self.ecn_marked += 1
        self._queue.append((packet, wire_size))
        self._queued_bytes += wire_size
        if not self._busy:
            self._transmit_next()
        return True

    def send_burst(self, burst) -> int:
        """GSO-style enqueue: the burst occupies ONE queue slot and ONE
        delivery event, but loss draws, buffer admission and ECN marking
        happen per segment, in order — the identical decision sequence to
        sending each segment alone (the unbatched sender also enqueues
        its datagrams back to back with no simulated time in between).
        Serialization time equals the sum of the segments'; the burst is
        delivered tail-aligned (when its last byte would have arrived),
        with one jitter draw for the train.  Returns the number of
        admitted segments (0 = everything dropped at ingress)."""
        if self._deliver is None:
            raise RuntimeError("pipe is not connected")
        admitted = []
        burst_wire = 0
        for dgram in burst.segments:
            wire_size = dgram.size + self.overhead
            if self.loss is not None and self.loss.should_drop():
                self.stats.dropped_loss += 1
                continue
            if self._queued_bytes + wire_size > self.buffer_bytes:
                self.stats.dropped_buffer += 1
                continue
            if (
                self.ecn_threshold is not None
                and self._queued_bytes > self.ecn_threshold
            ):
                dgram.ecn_ce = True
                self.ecn_marked += 1
            admitted.append(dgram)
            self._queued_bytes += wire_size
            burst_wire += wire_size
        if not admitted:
            return 0
        burst.segments = admitted
        self.sim.note_coalesced(len(admitted) - 1)
        self._queue.append((burst, burst_wire))
        if not self._busy:
            self._transmit_next()
        return len(admitted)

    def _transmit_next(self) -> None:
        if not self._queue:
            self._busy = False
            return
        self._busy = True
        packet, wire_size = self._queue.pop(0)
        self._queued_bytes -= wire_size
        tx_time = wire_size * 8.0 / self.bandwidth
        segments = getattr(packet, "segments", None)
        self.stats.tx_packets += 1 if segments is None else len(segments)
        self.stats.tx_bytes += wire_size
        extra = self._jitter_rng.uniform(0, self.jitter) if self._jitter_rng else 0.0
        self.sim.schedule(tx_time + self.delay + extra, self._deliver, packet)
        self.sim.schedule(tx_time, self._transmit_next)


class Link:
    """A bidirectional link made of two independent pipes.

    ``delay`` is the one-way delay in seconds and ``bandwidth`` in bits/s,
    as in the paper's {d, bw, l} link parameters.
    """

    def __init__(
        self,
        sim: Simulator,
        delay: float,
        bandwidth: float,
        loss_rate: float = 0.0,
        seed: int = 0,
        buffer_bytes: int = 64 * 1024,
        jitter: float = 0.0,
    ):
        # Distinct seeds per direction; both derive deterministically.
        self.forward = Pipe(
            sim, delay, bandwidth,
            SeededLossGen(loss_rate, seed * 2 + 1) if loss_rate > 0 else None,
            buffer_bytes, jitter=jitter, jitter_seed=seed * 2 + 3,
        )
        self.backward = Pipe(
            sim, delay, bandwidth,
            SeededLossGen(loss_rate, seed * 2 + 2) if loss_rate > 0 else None,
            buffer_bytes, jitter=jitter, jitter_seed=seed * 2 + 4,
        )
