"""Plugin cache: reusing plugins across connections (§2.5).

"To limit the injection overhead, we introduce a cache storing the plugin
associated PREs and memory.  When a new connection injects the same
plugin, it can reuse the cached PREs as is, without verifying or compiling
the pluglets again.  The plugin heap must be reinitialized to avoid
leaking information between unrelated connections."
"""

from __future__ import annotations

from typing import Optional

from .containment import QuarantineRegistry
from .plugin import Plugin, PluginInstance


class PluginCache:
    """Caches verified plugins and idle :class:`PluginInstance` shells.

    When built with a :class:`~repro.core.containment.QuarantineRegistry`,
    the cache is also the cross-connection enforcement point for plugin
    quarantine: :meth:`instantiate` refuses plugins that are backing off
    or blocklisted (raising
    :class:`~repro.core.containment.PluginQuarantined`)."""

    def __init__(self, quarantine: Optional[QuarantineRegistry] = None) -> None:
        self._plugins: dict[str, Plugin] = {}
        self._idle_instances: dict[str, list] = {}
        self.quarantine = quarantine
        self.hits = 0
        self.misses = 0

    def store(self, plugin: Plugin) -> None:
        """Add a plugin to the local cache (verifies it once)."""
        plugin.verify_all()
        self._plugins[plugin.name] = plugin

    def has(self, name: str) -> bool:
        return name in self._plugins

    def get(self, name: str) -> Optional[Plugin]:
        return self._plugins.get(name)

    @property
    def names(self) -> list:
        return sorted(self._plugins)

    def instantiate(self, name: str, conn) -> PluginInstance:
        """Create (or reuse) an instance of a cached plugin for ``conn``.

        Reuse re-targets the cached PREs at the new connection and resets
        the plugin heap; creation compiles/validates from scratch.
        """
        plugin = self._plugins.get(name)
        if plugin is None:
            raise KeyError(f"plugin {name!r} not in cache")
        if self.quarantine is not None:
            self.quarantine.check(name, getattr(conn, "now", 0.0))
        idle = self._idle_instances.get(name)
        if idle:
            self.hits += 1
            instance = idle.pop()
            instance.conn = conn
            instance.runtime.conn = conn
            instance.runtime.reset_for_reuse()
            instance._attached.clear()
            instance.attached = False
            return instance
        self.misses += 1
        return PluginInstance(plugin, conn)

    def release(self, instance: PluginInstance) -> None:
        """Return an instance to the cache when its connection completes."""
        instance.detach()
        self._idle_instances.setdefault(instance.plugin.name, []).append(instance)


class FieldPolicy:
    """Host policy over plugin field access (§2.3: "a host could reject
    plugins based on the fields that it wishes to access")."""

    def __init__(self, forbidden_reads: Optional[set] = None,
                 forbidden_writes: Optional[set] = None):
        self.forbidden_reads = forbidden_reads or set()
        self.forbidden_writes = forbidden_writes or set()

    def check(self, plugin_name: str, field_name: str, write: bool) -> None:
        from .api import ApiViolation

        if write and field_name in self.forbidden_writes:
            raise ApiViolation(
                f"policy forbids plugin {plugin_name} writing {field_name}"
            )
        if not write and field_name in self.forbidden_reads:
            raise ApiViolation(
                f"policy forbids plugin {plugin_name} reading {field_name}"
            )
