"""Fault containment and recovery for misbehaving plugins.

The paper's safety claim (§2.1) is that the PRE *contains* pluglets:
memory monitoring plus a termination proof.  Both defenses can be
wrong-sided at runtime — a proof may have been obtained against different
inputs, a helper may fault, a pluglet may misuse the API — so this module
adds the recovery half of containment:

* **Failure classification.**  A :class:`~repro.vm.interpreter.MemoryViolation`
  keeps the paper's semantics — the plugin is removed *and the connection
  is terminated* (§2.1 verbatim).  Every other runtime fault
  (:class:`~repro.vm.interpreter.FuelExhausted`, generic execution errors,
  :class:`~repro.core.api.ApiViolation`, protoop loops) is *transient*:
  the plugin is detached and the connection proceeds pluginless.

* **Quarantine with exponential backoff.**  Each crash is recorded in a
  :class:`QuarantineRegistry` (shared across connections through the
  :class:`~repro.core.cache.PluginCache`); a quarantined plugin cannot be
  re-instantiated until its backoff expires, and a plugin that keeps
  crashing is blocklisted outright.

Recovery events are emitted through protocol-operation event anchors
(``plugin_fault``, ``plugin_quarantined``, ``plugin_blocklisted``) so the
qlog tracer and the monitoring plugin observe them like any transport
event; when a :class:`~repro.trace.metrics.MetricsRegistry` is attached
to the connection (``conn.metrics``) the policy also counts faults into
it, giving simulator-wide fault totals without a tracer.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional

from repro.vm.interpreter import MemoryViolation


class FailureClass(enum.Enum):
    """How a pluglet runtime failure must be handled."""

    #: Memory-safety violation: remove the plugin and terminate the
    #: connection (§2.1).
    FATAL = "fatal"
    #: Bounded-resource or API failure: detach the plugin, quarantine it,
    #: keep the connection alive.
    TRANSIENT = "transient"


def classify_failure(exc: BaseException) -> FailureClass:
    """Map a pluglet runtime exception to a :class:`FailureClass`."""
    if isinstance(exc, MemoryViolation):
        return FailureClass.FATAL
    return FailureClass.TRANSIENT


class PluginQuarantined(Exception):
    """Instantiation refused: the plugin is quarantined or blocklisted."""


@dataclass
class CrashRecord:
    """Crash history of one plugin name."""

    crashes: int = 0
    last_crash: float = 0.0
    quarantined_until: float = 0.0
    blocklisted: bool = False
    reasons: list = field(default_factory=list)


class QuarantineRegistry:
    """Crash bookkeeping shared across connections.

    Every transient crash quarantines the plugin for
    ``backoff_base * backoff_factor**(crashes - 1)`` seconds (capped at
    ``backoff_max``); ``blocklist_threshold`` crashes blocklist it for
    good.  Times are simulation-clock seconds (``conn.now``)."""

    def __init__(
        self,
        backoff_base: float = 1.0,
        backoff_factor: float = 2.0,
        backoff_max: float = 300.0,
        blocklist_threshold: int = 5,
    ):
        if backoff_base <= 0 or backoff_factor < 1:
            raise ValueError("backoff must grow: base > 0, factor >= 1")
        self.backoff_base = backoff_base
        self.backoff_factor = backoff_factor
        self.backoff_max = backoff_max
        self.blocklist_threshold = blocklist_threshold
        self._records: dict[str, CrashRecord] = {}

    # --- recording ---------------------------------------------------------

    def record_crash(self, name: str, now: float, reason: str = "") -> CrashRecord:
        rec = self._records.setdefault(name, CrashRecord())
        rec.crashes += 1
        rec.last_crash = now
        if reason:
            rec.reasons.append(reason)
        backoff = min(
            self.backoff_max,
            self.backoff_base * self.backoff_factor ** (rec.crashes - 1),
        )
        rec.quarantined_until = now + backoff
        if rec.crashes >= self.blocklist_threshold:
            rec.blocklisted = True
        return rec

    def forgive(self, name: str) -> None:
        """Drop the crash history (operator override)."""
        self._records.pop(name, None)

    # --- queries -----------------------------------------------------------

    def record(self, name: str) -> Optional[CrashRecord]:
        return self._records.get(name)

    def available(self, name: str, now: float) -> bool:
        rec = self._records.get(name)
        if rec is None:
            return True
        return not rec.blocklisted and now >= rec.quarantined_until

    def check(self, name: str, now: float) -> None:
        """Raise :class:`PluginQuarantined` unless ``name`` may run."""
        rec = self._records.get(name)
        if rec is None:
            return
        if rec.blocklisted:
            raise PluginQuarantined(
                f"plugin {name} blocklisted after {rec.crashes} crashes"
            )
        if now < rec.quarantined_until:
            raise PluginQuarantined(
                f"plugin {name} quarantined until t={rec.quarantined_until:.3f} "
                f"(crash #{rec.crashes})"
            )

    def stats(self) -> dict:
        """Registry-wide counters for monitoring/experiments."""
        return {
            "plugins_crashed": len(self._records),
            "total_crashes": sum(r.crashes for r in self._records.values()),
            "blocklisted": sorted(
                n for n, r in self._records.items() if r.blocklisted
            ),
        }


class ContainmentPolicy:
    """Per-connection failure handler consulted by :class:`PluginInstance`.

    Attach one to a connection (``policy.attach(conn)``); without a policy
    the instance keeps the paper's terminate-on-any-failure semantics."""

    def __init__(self, registry: Optional[QuarantineRegistry] = None):
        self.registry = registry or QuarantineRegistry()
        #: (plugin, pluglet, FailureClass, reason) per observed failure.
        self.faults: list = []

    #: Recovery events this policy emits (declared on attach; they extend
    #: the base census rather than belonging to the paper's 72 protoops).
    EVENTS = ("plugin_fault", "plugin_quarantined", "plugin_blocklisted")

    def attach(self, conn) -> "ContainmentPolicy":
        conn.containment = self
        table = getattr(conn, "protoops", None)
        if table is not None:
            for event in self.EVENTS:
                if not table.exists(event):
                    table.declare(event)
        return self

    # ------------------------------------------------------------------

    @staticmethod
    def _emit(conn, name: str, *args) -> None:
        """Run an event protoop, tolerating absent tables / re-entry."""
        table = getattr(conn, "protoops", None)
        if table is None:
            return
        try:
            table.run(conn, name, None, *args)
        except Exception:
            # An observer of a fault event must never widen the fault.
            pass

    @staticmethod
    def _count(conn, metric: str) -> None:
        """Bump a counter on the connection's metrics registry, if any."""
        metrics = getattr(conn, "metrics", None)
        if metrics is None:
            return
        try:
            metrics.counter(metric).inc()
        except Exception:
            # Observability must never widen a fault.
            pass

    def on_pluglet_failure(self, instance, pluglet_name: str,
                           exc: BaseException) -> bool:
        """Handle a runtime failure.  Returns True when the failure was
        contained (plugin detached, connection proceeds); False when the
        caller must keep the fatal §2.1 path."""
        conn = instance.conn
        now = getattr(conn, "now", 0.0)
        failure_class = classify_failure(exc)
        plugin_name = instance.plugin.name
        self.faults.append((plugin_name, pluglet_name, failure_class, str(exc)))
        self._emit(conn, "plugin_fault", plugin_name, pluglet_name,
                   failure_class.value, str(exc))
        self._count(conn, "plugin.faults")
        if failure_class is FailureClass.FATAL:
            self._count(conn, "plugin.fatal_faults")
            return False
        instance.detach()
        rec = self.registry.record_crash(plugin_name, now, str(exc))
        self._emit(conn, "plugin_quarantined", plugin_name, rec.crashes,
                   rec.quarantined_until)
        self._count(conn, "plugin.quarantines")
        if rec.blocklisted:
            self._emit(conn, "plugin_blocklisted", plugin_name)
            self._count(conn, "plugin.blocklists")
        return True
