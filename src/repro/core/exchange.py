"""Exchanging plugins over a QUIC connection (§3.4, Figure 6).

Negotiation uses the two transport parameters (``supported_plugins``,
``plugins_to_inject``).  After the handshake each side knows what the
other offers and wants:

(a) plugins already in the local cache are injected as local plugins, in
    the order of ``plugins_to_inject``;
(b) missing plugins are requested with a PLUGIN_VALIDATE frame carrying
    the peer's required validation formula; the provider answers with
    PLUGIN_PROOF (authentication paths from PVs satisfying the formula)
    and streams the compressed plugin in PLUGIN frames, multiplexed with
    application data through the frame scheduler.

A received plugin is checked against the cached STRs of the trusted PVs;
on success it is stored in the local cache — "Remote plugins are not
activated for the current connection, but rather offered in subsequent
connections".

The exchange is resilient to hostile network conditions: requests are
retried with exponential backoff when the provider stays silent, PLUGIN
chunks may arrive out of order / duplicated / overlapping, the
reassembled binding is integrity-checked against a digest announced in
PLUGIN_PROOF, and when validation definitively fails or the provider
stops responding the exchange *degrades gracefully* — the connection
simply proceeds pluginless.
"""

from __future__ import annotations

import hashlib

from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.quic import frames as F
from repro.quic.connection import QuicConnection, ReservedFrame
from repro.quic.wire import Buffer
from repro.vm.analysis import LEGACY_RULES, Severity, analysis_enabled_by_env
from repro.secure.formula import Formula, parse_formula
from repro.secure.merkle import AuthenticationPath, verify_path
from repro.secure.validator import SignedTreeRoot

from .cache import PluginCache
from .containment import PluginQuarantined
from .plugin import Plugin
from .protoop import Anchor, ProtoopError

PLUGIN_VALIDATE_TYPE = 0x60
PLUGIN_PROOF_TYPE = 0x61
PLUGIN_TYPE = 0x62
PLUGIN_CHUNK = 1000
EXCHANGE_QUEUE = "__plugin_exchange__"

#: Request (PLUGIN_VALIDATE) timeout/backoff defaults, in seconds of
#: connection time.  A request not answered within the timeout is retried
#: with the timeout doubled; after ``DEFAULT_MAX_RETRIES`` retries the
#: exchange for that plugin degrades.
DEFAULT_REQUEST_TIMEOUT = 1.0
DEFAULT_RETRY_FACTOR = 2.0
DEFAULT_MAX_RETRIES = 3


@dataclass
class PluginValidateFrame(F.Frame):
    """Client -> server: request a plugin, stating the required formula."""

    plugin_name: str = ""
    formula: str = ""
    type = PLUGIN_VALIDATE_TYPE

    def serialize(self, buf: Buffer) -> None:
        buf.push_varint(self.type)
        buf.push_varint_prefixed_bytes(self.plugin_name.encode("utf-8"))
        buf.push_varint_prefixed_bytes(self.formula.encode("utf-8"))

    @classmethod
    def parse(cls, buf: Buffer, frame_type: int) -> "PluginValidateFrame":
        return cls(
            plugin_name=buf.pull_varint_prefixed_bytes().decode("utf-8"),
            formula=buf.pull_varint_prefixed_bytes().decode("utf-8"),
        )


def _push_path(buf: Buffer, path: AuthenticationPath) -> None:
    buf.push_varint(path.leaf_index)
    buf.push_varint(path.depth)
    buf.push_varint(len(path.siblings))
    for s in path.siblings:
        buf.push_bytes(s)
    buf.push_varint(len(path.leaf_slots))
    for slot in path.leaf_slots:
        if slot is None:
            buf.push_uint8(0)
        else:
            buf.push_uint8(1)
            buf.push_bytes(slot)


def _pull_path(buf: Buffer) -> AuthenticationPath:
    leaf_index = buf.pull_varint()
    depth = buf.pull_varint()
    siblings = [buf.pull_bytes(32) for _ in range(buf.pull_varint())]
    slots = []
    for _ in range(buf.pull_varint()):
        if buf.pull_uint8():
            slots.append(buf.pull_bytes(32))
        else:
            slots.append(None)
    return AuthenticationPath(leaf_index, depth, siblings, slots)


@dataclass
class ProofEntry:
    validator_id: str
    str_epoch: int
    str_root: bytes
    str_signature: bytes
    path: AuthenticationPath

    @property
    def signed_root(self) -> SignedTreeRoot:
        return SignedTreeRoot(self.validator_id, self.str_epoch,
                              self.str_root, self.str_signature)


@dataclass
class PluginProofFrame(F.Frame):
    """Provider -> requester: one PV's proof of consistency.

    One frame per validator keeps every frame within a packet; the
    requester accumulates proofs until the formula can be evaluated."""

    plugin_name: str = ""
    total_length: int = 0  # compressed plugin length, announced up front
    #: Integrity check over the reassembled binding: SHA-256 of the
    #: compressed plugin bytes (empty = not announced).
    digest: bytes = b""
    proof: Optional[ProofEntry] = None
    type = PLUGIN_PROOF_TYPE

    def serialize(self, buf: Buffer) -> None:
        buf.push_varint(self.type)
        buf.push_varint_prefixed_bytes(self.plugin_name.encode("utf-8"))
        buf.push_varint(self.total_length)
        buf.push_varint_prefixed_bytes(self.digest)
        proof = self.proof
        buf.push_varint_prefixed_bytes(proof.validator_id.encode("utf-8"))
        buf.push_varint(proof.str_epoch)
        buf.push_bytes(proof.str_root)
        buf.push_varint_prefixed_bytes(proof.str_signature)
        _push_path(buf, proof.path)

    @classmethod
    def parse(cls, buf: Buffer, frame_type: int) -> "PluginProofFrame":
        name = buf.pull_varint_prefixed_bytes().decode("utf-8")
        total = buf.pull_varint()
        digest = buf.pull_varint_prefixed_bytes()
        vid = buf.pull_varint_prefixed_bytes().decode("utf-8")
        epoch = buf.pull_varint()
        root = buf.pull_bytes(32)
        sig = buf.pull_varint_prefixed_bytes()
        proof = ProofEntry(vid, epoch, root, sig, _pull_path(buf))
        return cls(plugin_name=name, total_length=total, digest=digest,
                   proof=proof)


@dataclass
class PluginFrame(F.Frame):
    """A chunk of the compressed plugin, akin to the crypto stream."""

    plugin_name: str = ""
    offset: int = 0
    data: bytes = b""
    type = PLUGIN_TYPE

    def serialize(self, buf: Buffer) -> None:
        buf.push_varint(self.type)
        buf.push_varint_prefixed_bytes(self.plugin_name.encode("utf-8"))
        buf.push_varint(self.offset)
        buf.push_varint_prefixed_bytes(self.data)

    @classmethod
    def parse(cls, buf: Buffer, frame_type: int) -> "PluginFrame":
        return cls(
            plugin_name=buf.pull_varint_prefixed_bytes().decode("utf-8"),
            offset=buf.pull_varint(),
            data=buf.pull_varint_prefixed_bytes(),
        )


class TrustStore:
    """The requester's trust anchors: PV public keys and cached STRs for
    the current epoch."""

    def __init__(self) -> None:
        self._keys: dict[str, bytes] = {}
        self._strs: dict[str, SignedTreeRoot] = {}

    def trust_validator(self, validator_id: str, public_key: bytes) -> None:
        self._keys[validator_id] = public_key

    def cache_str(self, signed: SignedTreeRoot) -> None:
        if signed.validator_id not in self._keys:
            raise ValueError(f"untrusted validator {signed.validator_id!r}")
        if not signed.verify(self._keys[signed.validator_id]):
            raise ValueError("STR signature invalid")
        self._strs[signed.validator_id] = signed

    def known_str(self, validator_id: str) -> Optional[SignedTreeRoot]:
        return self._strs.get(validator_id)

    def trusted(self, validator_id: str) -> bool:
        return validator_id in self._keys


@dataclass
class _IncomingPlugin:
    total_length: int = -1
    digest: bytes = b""
    proofs: list = field(default_factory=list)
    chunks: dict = field(default_factory=dict)

    def add_chunk(self, offset: int, data: bytes) -> str:
        """Validate and store one chunk.  Returns ``"ok"``, ``"duplicate"``
        or ``"rejected"`` — chunks may arrive out of order or duplicated
        (retransmission), but zero-length, out-of-range and overlapping
        chunks are rejected rather than trusted."""
        if not data:
            return "rejected"
        if self.total_length >= 0 and offset + len(data) > self.total_length:
            return "rejected"
        existing = self.chunks.get(offset)
        if existing is not None:
            return "duplicate" if existing == data else "rejected"
        end = offset + len(data)
        for other_off, other in self.chunks.items():
            if other_off < end and offset < other_off + len(other):
                return "rejected"  # partial overlap: hostile or buggy peer
        self.chunks[offset] = data
        return "ok"

    def complete(self) -> bool:
        """Whether the chunks contiguously cover ``[0, total_length)``.

        Coverage is computed over intervals, not a byte-count sum, so the
        exact-multiple-of-PLUGIN_CHUNK boundary and out-of-order arrival
        are handled and a hole can never be masked by duplicates."""
        if self.total_length < 0:
            return False
        end = 0
        for offset in sorted(self.chunks):
            if offset > end:
                return False  # hole
            end = max(end, offset + len(self.chunks[offset]))
        return end >= self.total_length

    def assemble(self) -> bytes:
        out = bytearray(self.total_length)
        for offset, data in self.chunks.items():
            out[offset:offset + len(data)] = data
        return bytes(out)

    def integrity_ok(self, compressed: bytes) -> bool:
        if not self.digest:
            return True  # provider did not announce one
        return hashlib.sha256(compressed).digest() == self.digest


@dataclass
class _PendingRequest:
    """One outstanding PLUGIN_VALIDATE awaiting proofs + chunks."""

    name: str
    attempts: int = 1
    next_retry: float = 0.0
    timeout: float = DEFAULT_REQUEST_TIMEOUT


class PluginExchanger:
    """Drives plugin negotiation and transfer on one connection."""

    def __init__(
        self,
        conn: QuicConnection,
        cache: PluginCache,
        trust: Optional[TrustStore] = None,
        formula: str = "",
        proof_provider: Optional[Callable] = None,
        auto_inject: bool = True,
        request_timeout: float = DEFAULT_REQUEST_TIMEOUT,
        retry_factor: float = DEFAULT_RETRY_FACTOR,
        max_retries: int = DEFAULT_MAX_RETRIES,
    ):
        self.conn = conn
        self.cache = cache
        self.trust = trust or TrustStore()
        self.formula_text = formula
        self.proof_provider = proof_provider
        self.auto_inject = auto_inject
        self.request_timeout = request_timeout
        self.retry_factor = retry_factor
        self.max_retries = max_retries
        self.injected: list = []
        self.received: list = []
        self.rejected: dict = {}
        #: plugin name -> reason the exchange gave up (graceful degradation).
        self.degraded: dict = {}
        #: Resilience counters (observable in experiments and tests).
        self.stats = {
            "requests": 0,
            "retries": 0,
            "chunks_rejected": 0,
            "chunks_duplicated": 0,
            "integrity_failures": 0,
        }
        self.pending: dict[str, _PendingRequest] = {}
        self._incoming: dict[str, _IncomingPlugin] = {}
        self._register()

    # ------------------------------------------------------------------

    def _register(self) -> None:
        conn = self.conn
        conn.frame_registry.register(PLUGIN_VALIDATE_TYPE, PluginValidateFrame)
        conn.frame_registry.register(PLUGIN_PROOF_TYPE, PluginProofFrame)
        conn.frame_registry.register(PLUGIN_TYPE, PluginFrame)
        table = conn.protoops
        table.register("process_frame", self._process_validate,
                       param=PLUGIN_VALIDATE_TYPE, parameterized=True)
        table.register("process_frame", self._process_proof,
                       param=PLUGIN_PROOF_TYPE, parameterized=True)
        table.register("process_frame", self._process_plugin,
                       param=PLUGIN_TYPE, parameterized=True)
        # Exchange frames are reliable: requeue them when lost.
        for frame_type in (PLUGIN_VALIDATE_TYPE, PLUGIN_PROOF_TYPE,
                           PLUGIN_TYPE):
            table.register("notify_frame", self._notify_exchange_frame,
                           param=frame_type, parameterized=True)
        table.attach("connection_established", Anchor.POST,
                     self._on_established)
        # The sans-io exchanger has no timer of its own; piggyback the
        # retry clock on the send path, which runs on every wakeup, and
        # publish the earliest retry deadline as a wakeup hint so an
        # otherwise idle connection is still pumped when a request times
        # out (e.g. a silent provider after the handshake settles).
        table.attach("before_sending_packet", Anchor.POST, self._on_tick)
        hints = getattr(conn, "wakeup_hints", None)
        if hints is not None:
            hints.append(self._next_deadline)
        # Resilience events (extensions beyond the 72-protoop census).
        for event in ("plugin_exchange_retry", "plugin_exchange_degraded",
                      "plugin_exchange_completed"):
            if not table.exists(event):
                table.declare(event)
        # Advertise the cache contents.
        conn.configuration.supported_plugins = list(self.cache.names)

    def _emit(self, name: str, *args) -> None:
        """Run an observability event protoop; observers must not be able
        to break the exchange."""
        try:
            self.conn.protoops.run(self.conn, name, None, *args)
        except Exception:
            pass

    def _notify_exchange_frame(self, conn, frame, acked: bool, pkt) -> None:
        if not acked:
            self._queue(frame)

    def _on_established(self, conn, args, result) -> None:
        self.negotiate()

    # ------------------------------------------------------------------

    def negotiate(self) -> None:
        """Figure 6, step after handshake: inject what we have, request
        what we miss."""
        peer = self.conn.peer_transport_parameters
        if peer is None:
            return
        for name in peer.plugins_to_inject:
            if self.cache.has(name):
                if self.auto_inject:
                    try:
                        self.inject_local(name)
                    except (PluginQuarantined, ProtoopError) as exc:
                        # Crash-looping plugin, or one the conflict
                        # analyzer / protoop table found incompatible with
                        # the already-attached set: proceed without it
                        # rather than failing the negotiation.
                        self.degraded[name] = str(exc)
                        self._emit("plugin_exchange_degraded", name, str(exc))
            else:
                self._request(name)

    def inject_local(self, name: str) -> None:
        instance = self.cache.instantiate(name, self.conn)
        instance.attach()
        self.injected.append(name)

    def _request(self, name: str) -> None:
        frame = PluginValidateFrame(plugin_name=name, formula=self.formula_text)
        self._queue(frame)
        self.stats["requests"] += 1
        self.pending[name] = _PendingRequest(
            name=name,
            next_retry=self.conn.now + self.request_timeout,
            timeout=self.request_timeout,
        )

    def _next_deadline(self) -> Optional[float]:
        """Earliest pending retry deadline (None when nothing is pending);
        drives the connection's wakeup timer."""
        if not self.pending:
            return None
        return min(req.next_retry for req in self.pending.values())

    def _on_tick(self, conn, args, result) -> None:
        """Retry silent requests with exponential backoff; give up (and
        degrade gracefully) after ``max_retries`` resends."""
        now = conn.now
        for name in list(self.pending):
            req = self.pending[name]
            if now < req.next_retry:
                continue
            if req.attempts > self.max_retries:
                del self.pending[name]
                reason = (
                    f"no response after {req.attempts} attempts; "
                    "proceeding without plugin"
                )
                self.degraded[name] = reason
                self._emit("plugin_exchange_degraded", name, reason)
                continue
            req.attempts += 1
            req.timeout *= self.retry_factor
            req.next_retry = now + req.timeout
            self.stats["retries"] += 1
            self._queue(PluginValidateFrame(plugin_name=name,
                                            formula=self.formula_text))
            self._emit("plugin_exchange_retry", name, req.attempts)

    def _queue(self, frame: F.Frame) -> None:
        self.conn.reserve_frames([
            ReservedFrame(frame=frame, plugin=EXCHANGE_QUEUE,
                          retransmittable=True, congestion_controlled=True)
        ])

    # --- provider side ------------------------------------------------------

    def _process_validate(self, conn, frame: PluginValidateFrame, ctx) -> None:
        if self.proof_provider is None:
            return
        provided = self.proof_provider(frame.plugin_name, frame.formula)
        if provided is None:
            return
        compressed, proofs = provided
        digest = hashlib.sha256(compressed).digest()
        for proof in proofs:
            self._queue(PluginProofFrame(
                plugin_name=frame.plugin_name,
                total_length=len(compressed),
                digest=digest,
                proof=proof,
            ))
        for offset in range(0, len(compressed), PLUGIN_CHUNK):
            self._queue(PluginFrame(
                plugin_name=frame.plugin_name,
                offset=offset,
                data=compressed[offset:offset + PLUGIN_CHUNK],
            ))

    # --- requester side ------------------------------------------------------

    def _touch_pending(self, name: str) -> None:
        """The provider is alive: push the retry deadline out so in-flight
        transfers are not re-requested mid-stream."""
        req = self.pending.get(name)
        if req is not None:
            req.next_retry = self.conn.now + req.timeout

    def _process_proof(self, conn, frame: PluginProofFrame, ctx) -> None:
        state = self._incoming.setdefault(frame.plugin_name, _IncomingPlugin())
        state.total_length = frame.total_length
        # Chunks accepted before the length was known may now be seen to
        # be out of range; drop them so completion cannot stall on them.
        for offset in [o for o, d in state.chunks.items()
                       if o + len(d) > state.total_length]:
            del state.chunks[offset]
            self.stats["chunks_rejected"] += 1
        if frame.digest:
            state.digest = frame.digest
        if frame.proof is not None:
            state.proofs = [
                p for p in state.proofs
                if p.validator_id != frame.proof.validator_id
            ] + [frame.proof]
        self._touch_pending(frame.plugin_name)
        self._maybe_finish(frame.plugin_name)

    def _process_plugin(self, conn, frame: PluginFrame, ctx) -> None:
        state = self._incoming.setdefault(frame.plugin_name, _IncomingPlugin())
        verdict = state.add_chunk(frame.offset, frame.data)
        if verdict == "rejected":
            self.stats["chunks_rejected"] += 1
            return
        if verdict == "duplicate":
            self.stats["chunks_duplicated"] += 1
        self._touch_pending(frame.plugin_name)
        self._maybe_finish(frame.plugin_name)

    def _maybe_finish(self, name: str) -> None:
        state = self._incoming.get(name)
        if state is None or not state.complete():
            return
        compressed = state.assemble()
        if not state.integrity_ok(compressed):
            # The reassembled binding does not hash to the announced
            # digest: throw the chunks away and let the retry clock
            # re-request the plugin from scratch.
            self.stats["integrity_failures"] += 1
            state.chunks.clear()
            return
        reason = self._verify_incoming(name, compressed, state.proofs)
        if reason is None:
            plugin = Plugin.decompress(compressed)
            reason = self._analyze_received(plugin)
            if reason is None:
                del self._incoming[name]
                self.pending.pop(name, None)
                self.rejected.pop(name, None)
                self.cache.store(plugin)
                self.received.append(name)
                self._emit("plugin_exchange_completed", name, len(compressed))
                return
        self.rejected[name] = reason
        if "unsatisfied" not in reason:
            # Definitive failure; a formula-unsatisfied plugin stays
            # pending in case late proof frames arrive (loss reordering).
            del self._incoming[name]
            self.pending.pop(name, None)
            self.degraded[name] = reason
            self._emit("plugin_exchange_degraded", name, reason)

    def _analyze_received(self, plugin: Plugin) -> Optional[str]:
        """Static-analysis gate on a reassembled plugin.

        The attach-time verifier would reject the plugin anyway; running
        the analyzer here keeps statically-broken bytecode out of the
        cache entirely and turns the failure into a graceful degrade with
        a precise diagnostic (rule id + pc) instead of a later attach
        error.  Only the §2.1 acceptance rules reject — deeper analyzer
        findings (unproven memory, loops) stay advisory, matching
        ``Plugin.verify_all``.  Returns a rejection reason or None."""
        if not analysis_enabled_by_env():
            return None
        for pluglet_name, report in plugin.analyze_all().items():
            for diag in report.diagnostics:
                if diag.rule in LEGACY_RULES and diag.severity is Severity.ERROR:
                    where = (f" at instruction {diag.pc}"
                             if diag.pc is not None else "")
                    return (f"static analysis: pluglet {pluglet_name}: "
                            f"{diag.severity}[{diag.rule}]: "
                            f"{diag.message}{where}")
        return None

    def _verify_incoming(self, name: str, compressed: bytes, proofs: list):
        """Check of the proof of consistency (§3.3 / Figure 5).

        Returns a rejection reason, or None on success."""
        try:
            plugin = Plugin.decompress(compressed)
        except Exception as exc:
            return f"undecodable plugin: {exc}"
        if plugin.name != name:
            return "plugin name mismatch"
        code = plugin.serialize()
        satisfied = set()
        str_mismatch: Optional[str] = None
        for proof in proofs:
            vid = proof.validator_id
            if not self.trust.trusted(vid):
                continue
            cached = self.trust.known_str(vid)
            if cached is None:
                continue
            served = proof.signed_root
            if served.root != cached.root or served.epoch != cached.epoch:
                # Either stale or an equivocation attempt: do not accept,
                # and surface it for reporting.
                str_mismatch = f"STR mismatch for {vid} (possible equivocation)"
                continue
            if not verify_path(cached.root, name, code, proof.path):
                continue
            satisfied.add(vid)
        if not self.formula_text:
            if satisfied or not proofs:
                return None
            return str_mismatch or "no valid proofs"
        formula = parse_formula(self.formula_text)
        if formula.evaluate(satisfied):
            self.rejected.pop(name, None)
            return None
        if str_mismatch is not None:
            return str_mismatch  # definitive: a PV served a divergent STR
        return (
            f"validation formula {self.formula_text!r} unsatisfied "
            f"(valid proofs: {sorted(satisfied)})"
        )


def make_proof_provider(repository, validators: dict) -> Callable:
    """Build a provider closure from PR + PV objects.

    ``validators`` maps validator_id -> PluginValidator.  The provider
    compresses the plugin from the PR and gathers authentication paths
    from the PVs named in the requester's formula (one minimal satisfying
    set is enough; we send proofs for every requested PV we know)."""
    import zlib

    from repro.secure.formula import parse_formula as _parse

    def provider(name: str, formula_text: str):
        code = repository.plugin_code(name)
        if code is None:
            return None
        wanted = set(validators)
        if formula_text:
            try:
                wanted = _parse(formula_text).validators() & set(validators)
            except Exception:
                return None
        proofs = []
        for vid in sorted(wanted):
            validator = validators[vid]
            if not validator.validated(name):
                continue
            path = validator.lookup(name)
            signed = validator.current_str
            proofs.append(ProofEntry(vid, signed.epoch, signed.root,
                                     signed.signature, path))
        return zlib.compress(code, level=9), proofs

    return provider
