"""Frame scheduler: class-based queuing + deficit round robin (§2.3).

Two rules from the paper:

1. plugins must not prevent PQUIC from sending application data — while
   payload data is pending, core frames (STREAM, ACK, MAX_DATA, ...) keep a
   guaranteed fraction of the packet budget;
2. no plugin may starve another — the remaining budget is split between
   plugins by deficit round robin.
"""

from __future__ import annotations

from typing import Optional

from repro.quic import frames as F
from repro.quic.packet import Epoch
from repro.quic.wire import Buffer

#: Guaranteed fraction of each packet's budget for core frames while
#: application data is pending ("at least x% of the available congestion
#: window").
CORE_FRACTION = 0.5
#: DRR quantum added to each plugin's deficit per round.
DRR_QUANTUM = 512
#: Bytes of frame header slack assumed when sizing stream chunks.
STREAM_FRAME_OVERHEAD = 12
MIN_PACKET_USEFUL = 64

#: Scratch buffer for sizing: the scheduler only needs each candidate
#: frame's encoded *length*, so it serializes into one reused bytearray
#: instead of allocating a fresh ``bytes`` per query (``to_bytes``).
_size_buf = Buffer(bytearray())


def _frame_size(frame: F.Frame) -> int:
    _size_buf.clear()
    frame.serialize(_size_buf)
    return len(_size_buf)


class DrrState:
    """Per-connection deficit-round-robin state across plugin queues."""

    def __init__(self) -> None:
        self.deficits: dict[str, int] = {}
        self.order: list[str] = []

    def observe(self, plugin: str) -> None:
        if plugin not in self.deficits:
            self.deficits[plugin] = 0
            self.order.append(plugin)

    def rotate(self) -> None:
        if self.order:
            self.order.append(self.order.pop(0))


def _scheduler_state(conn) -> DrrState:
    state = getattr(conn, "_drr_state", None)
    if state is None:
        state = DrrState()
        conn._drr_state = state
    return state


def schedule_packet_frames(conn, epoch: Epoch, path_index: int, budget: int):
    """Fill one packet. Returns (frames, ack_only).

    This is the default behaviour of the ``schedule_frames`` protoop; a
    plugin could replace it wholesale (e.g. a latency-priority scheduler).
    """
    path = conn.paths[path_index]
    space = conn.initial_space if epoch is Epoch.INITIAL else path.space
    frames: list[F.Frame] = []
    used = 0
    ack_only = True

    # 1. ACK — not congestion controlled, always fits first.  The
    # reported ack_delay is clamped to our own advertised max_ack_delay
    # (the send-side mirror of the RFC 9002 §5.3 receive clamp).
    if space.ack_needed:
        ack = space.ack_frame(
            conn.now, conn.configuration.transport_parameters.max_ack_delay)
        if ack is not None:
            size = _frame_size(ack)
            if used + size <= budget:
                frames.append(ack)
                used += size
                space.ack_needed = False
                conn.protoops.run(conn, "ack_frame_built", None, epoch, path_index)

    # 2. CRYPTO data (handshake) — also exempt from congestion control in
    # this model (Initial packets carry the handshake forward).
    if epoch is Epoch.INITIAL:
        while conn._crypto_send.has_pending and used < budget - MIN_PACKET_USEFUL:
            chunk = conn._crypto_send.next_chunk(budget - used - STREAM_FRAME_OVERHEAD)
            if chunk is None:
                break
            offset, data, _fin = chunk
            frame = F.CryptoFrame(offset=offset, data=data)
            frames.append(frame)
            used += _frame_size(frame)
            ack_only = False
        return frames, ack_only

    # Path probe frames (PATH_CHALLENGE / PATH_RESPONSE) are bound to
    # this very path (RFC 9000 §8.2.2) and, like ACKs, exempt from the
    # congestion window (§8.2.4 allows probing outside the send window).
    while path.probe_frames:
        size = _frame_size(path.probe_frames[0])
        if used + size > budget:
            break
        frames.append(path.probe_frames.pop(0))
        used += size
        ack_only = False

    # PTO probe bundle: one bundle per packet (so a PTO expiry yields at
    # most MAX_PTO_PROBES probe packets), exempt from the congestion
    # window per RFC 9002 §7.5 — a blocked window is exactly when the
    # probe is needed.  Frames that overflow the budget stay queued at
    # the bundle head for the next packet.
    if path.pto_probes:
        bundle = path.pto_probes[0]
        while bundle:
            size = _frame_size(bundle[0])
            if used + size > budget:
                break
            frames.append(bundle.pop(0))
            used += size
            ack_only = False
        if not bundle:
            path.pto_probes.pop(0)

    # Non-congestion-controlled plugin frames (e.g. MP_ACK) are exempt
    # from the window, like ACKs.
    for reserved in list(conn.reserved_frames):
        if reserved.congestion_controlled:
            continue
        size = _frame_size(reserved.frame)
        if used + size > budget:
            continue
        conn.reserved_frames.remove(reserved)
        frames.append(reserved.frame)
        used += size

    # 1-RTT: apply the congestion window to everything below.
    allowance = min(budget - used, path.cc.available_window)
    if allowance < MIN_PACKET_USEFUL:
        return frames, ack_only  # possibly ACK-only, possibly empty

    core_pending = conn.data_to_send_pending() or bool(conn.peek_control_frames())
    plugin_pending = bool(conn.reserved_frames)
    if core_pending and plugin_pending:
        core_budget = max(int(allowance * CORE_FRACTION), MIN_PACKET_USEFUL)
        plugin_budget = allowance - core_budget
    elif plugin_pending:
        core_budget = 0
        plugin_budget = allowance
    else:
        core_budget = allowance
        plugin_budget = 0

    # 3. Core control frames (flow control updates, path frames...).
    while core_budget > 0:
        frame = conn.pop_control_frame()
        if frame is None:
            break
        size = _frame_size(frame)
        if size > core_budget:
            conn._control_frames.insert(0, frame)
            break
        frames.append(frame)
        used += size
        core_budget -= size
        ack_only = False

    # 4. Plugin frames by deficit round robin.
    if plugin_budget > 0 and conn.reserved_frames:
        used_plugin, plugin_frames = _drr_fill(conn, plugin_budget)
        frames.extend(plugin_frames)
        used += used_plugin
        if plugin_frames:
            ack_only = False
        # Unused plugin budget flows back to core (work conserving).
        core_budget += plugin_budget - used_plugin

    # 5. Stream data fills what remains of the core budget.
    while core_budget > STREAM_FRAME_OVERHEAD:
        stream_id = conn.protoops.run(conn, "stream_to_send", None)
        if stream_id is None:
            break
        stream = conn.streams_send[stream_id]
        flow_credit = conn.connection_flow_credit()
        chunk_limit = core_budget - STREAM_FRAME_OVERHEAD
        chunk = stream.next_chunk(chunk_limit)
        if chunk is None:
            break
        offset, data, fin = chunk
        end = offset + len(data)
        new_fc = max(0, end - stream.fc_high)
        if new_fc > flow_credit:
            # Respect connection-level flow control: trim or requeue.
            allowed = len(data) - (new_fc - flow_credit)
            if allowed <= 0 and not fin:
                stream.on_loss(offset, len(data), fin)  # requeue untouched
                break
            kept, spill = data[:max(0, allowed)], data[max(0, allowed):]
            if spill:
                stream.on_loss(offset + len(kept), len(spill), fin)
                fin = False
            data = kept
            end = offset + len(data)
            if not data and not fin:
                break
        frame = F.StreamFrame(stream_id=stream_id, offset=offset, data=data, fin=fin)
        encoded = _frame_size(frame)
        frames.append(frame)
        used += encoded
        core_budget -= encoded
        conn.data_sent += max(0, end - stream.fc_high)
        stream.fc_high = max(stream.fc_high, end)
        ack_only = False
        if not data and fin:
            break

    return frames, ack_only


def _drr_fill(conn, budget: int):
    """Pick plugin-reserved frames fairly within ``budget`` bytes."""
    state = _scheduler_state(conn)
    queues: dict[str, list] = {}
    for reserved in conn.reserved_frames:
        state.observe(reserved.plugin)
        queues.setdefault(reserved.plugin, []).append(reserved)
    used = 0
    picked: list[F.Frame] = []
    taken: list = []
    progress = True
    while progress and used < budget:
        progress = False
        for plugin in list(state.order):
            queue = queues.get(plugin)
            if not queue:
                continue
            state.deficits[plugin] += DRR_QUANTUM
            while queue and used < budget:
                reserved = queue[0]
                size = _frame_size(reserved.frame)
                if size > state.deficits[plugin] or used + size > budget:
                    break
                queue.pop(0)
                taken.append(reserved)
                picked.append(reserved.frame)
                state.deficits[plugin] -= size
                used += size
                progress = True
            if not queue:
                state.deficits[plugin] = 0
    for reserved in taken:
        conn.reserved_frames.remove(reserved)
    state.rotate()
    return used, picked
