"""PQUIC core: protocol operations, plugins, the pluglet API and scheduler."""

from .api import CORE_HELPER_NAMES, ApiViolation, PluginApi
from .cache import FieldPolicy, PluginCache
from .containment import (
    ContainmentPolicy,
    CrashRecord,
    FailureClass,
    PluginQuarantined,
    QuarantineRegistry,
    classify_failure,
)
from .memory import AllocationError, BlockAllocator
from .plugin import Plugin, PluginInstance, PluginRuntime, Pluglet
from .protoop import Anchor, ProtocolOperation, ProtoopError, ProtoopTable

__all__ = [
    "Anchor",
    "AllocationError",
    "ApiViolation",
    "BlockAllocator",
    "CORE_HELPER_NAMES",
    "ContainmentPolicy",
    "CrashRecord",
    "FailureClass",
    "FieldPolicy",
    "PluginQuarantined",
    "QuarantineRegistry",
    "classify_failure",
    "Plugin",
    "PluginApi",
    "PluginCache",
    "PluginInstance",
    "PluginRuntime",
    "Pluglet",
    "ProtocolOperation",
    "ProtoopError",
    "ProtoopTable",
]
