"""Θ(1) fixed-size block allocator for the plugin memory area (§2.3).

"Our framework dedicates a fixed-size memory area split into constant size
blocks [56].  Such approach provides algorithmic Θ(1) time memory
allocation while limiting fragmentation."

The allocator manages the plugin's :class:`~repro.vm.interpreter.PluginMemory`
byte area.  Addresses handed to pluglets are VM virtual addresses (offset
from ``HEAP_BASE``), so allocated blocks are directly loadable/storable by
bytecode under the memory monitor.
"""

from __future__ import annotations

from typing import Optional

from repro.vm.interpreter import HEAP_BASE, PluginMemory

BLOCK_SIZE = 64


class AllocationError(Exception):
    """The plugin memory pool is exhausted or an address is invalid."""


class BlockAllocator:
    """Kenwright-style fixed-block pool: free list threaded through blocks.

    Allocations larger than one block take a contiguous run of blocks (the
    run length is recorded host-side), found in O(runs) worst case but O(1)
    for the dominant single-block case.
    """

    def __init__(self, memory: PluginMemory, block_size: int = BLOCK_SIZE):
        if block_size <= 0 or memory.size % block_size:
            raise ValueError("memory size must be a multiple of block size")
        self.memory = memory
        self.block_size = block_size
        self.num_blocks = memory.size // block_size
        self._free: list[int] = list(range(self.num_blocks - 1, -1, -1))
        self._free_set: set[int] = set(self._free)
        self._allocated: dict[int, int] = {}  # first block -> run length

    # ------------------------------------------------------------------

    @property
    def free_blocks(self) -> int:
        return len(self._free)

    @property
    def allocated_blocks(self) -> int:
        return self.num_blocks - len(self._free)

    def malloc(self, size: int) -> int:
        """Allocate ``size`` bytes; returns a VM virtual address.

        Single-block allocations pop the free list in Θ(1).
        """
        if size <= 0:
            raise AllocationError(f"invalid allocation size {size}")
        blocks_needed = -(-size // self.block_size)
        if blocks_needed == 1:
            if not self._free:
                raise AllocationError("plugin memory exhausted")
            block = self._free.pop()
            self._free_set.discard(block)
            self._allocated[block] = 1
            return HEAP_BASE + block * self.block_size
        return self._malloc_run(blocks_needed)

    def _malloc_run(self, count: int) -> int:
        """Find a contiguous run of ``count`` free blocks."""
        run_start, run_len = None, 0
        for block in range(self.num_blocks):
            if block in self._free_set:
                if run_start is None:
                    run_start, run_len = block, 1
                else:
                    run_len += 1
                if run_len == count:
                    for b in range(run_start, run_start + count):
                        self._free_set.discard(b)
                    self._free = [b for b in self._free if b in self._free_set]
                    self._allocated[run_start] = count
                    return HEAP_BASE + run_start * self.block_size
            else:
                run_start, run_len = None, 0
        raise AllocationError(
            f"no contiguous run of {count} blocks in plugin memory"
        )

    def free(self, address: int) -> None:
        block, rem = divmod(address - HEAP_BASE, self.block_size)
        if rem or block not in self._allocated:
            raise AllocationError(f"free of unallocated address 0x{address:x}")
        count = self._allocated.pop(block)
        start = block * self.block_size
        self.memory.data[start:start + count * self.block_size] = bytes(
            count * self.block_size
        )
        for b in range(block, block + count):
            self._free.append(b)
            self._free_set.add(b)

    def allocation_size(self, address: int) -> Optional[int]:
        """Bytes usable at ``address``, or None if not an allocation."""
        block = (address - HEAP_BASE) // self.block_size
        count = self._allocated.get(block)
        return count * self.block_size if count else None

    def reset(self) -> None:
        """Return every block and zero the memory (plugin reuse, §2.5)."""
        self.memory.reset()
        self._free = list(range(self.num_blocks - 1, -1, -1))
        self._free_set = set(self._free)
        self._allocated.clear()
