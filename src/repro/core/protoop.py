"""Protocol operations: the gray-box interface of PQUIC (§2.2, §2.3).

A protocol operation (protoop) is a named, specified subroutine of the
protocol workflow.  Each protoop exposes three anchors:

* ``replace`` — the actual implementation; by default the built-in
  function, overridable by at most one pluglet per (protoop, parameter);
* ``pre`` / ``post`` — passive observation points run just before/after
  the operation, any number of pluglets, read-only access.

Parameterized protoops (e.g. ``process_frame``) have one behaviour per
parameter value (the frame type), which is how plugins introduce entirely
new frames without touching callers.  Protoops may also be *external*:
callable only by the application (§2.4), the channel through which plugins
extend the application-facing API.

Combining plugins must not create call loops (Figure 3): the table tracks
the stack of running protoops and aborts the connection if an operation is
re-entered.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Callable, Optional

from repro.errors import TransportError, TransportErrorCode


class Anchor(enum.Enum):
    """Pluglet insertion points on a protocol operation."""

    REPLACE = "replace"
    PRE = "pre"
    POST = "post"


class ProtoopError(TransportError):
    """Raised when the protoop machinery must kill the connection."""

    def __init__(self, code: TransportErrorCode, reason: str):
        super().__init__(code, reason)


@dataclass
class ProtocolOperation:
    """One protocol operation and everything attached to it."""

    name: str
    parameterized: bool = False
    external: bool = False
    doc: str = ""
    #: Built-in behaviour per parameter (key None when not parameterized).
    defaults: dict = field(default_factory=dict)
    #: Pluglet overriding the behaviour, per parameter.
    replacements: dict = field(default_factory=dict)
    pre: dict = field(default_factory=dict)
    post: dict = field(default_factory=dict)

    def params(self) -> set:
        keys = set(self.defaults) | set(self.replacements)
        keys |= set(self.pre) | set(self.post)
        return keys

    def behavior(self, param: Any) -> Optional[Callable]:
        if param in self.replacements:
            return self.replacements[param]
        return self.defaults.get(param)


class ProtoopTable:
    """Per-connection registry and dispatcher of protocol operations."""

    def __init__(self) -> None:
        self._ops: dict[str, ProtocolOperation] = {}
        self._call_stack: list[tuple[str, Any]] = []
        self.runs = 0  # total protoop invocations (monitoring/benchmarks)
        #: Dispatch cache: (name, param) -> flat call plan
        #: (op, key, pre tuple, behavior, post tuple).  Invalidated as a
        #: whole whenever any anchor changes (register/attach/detach), so
        #: the common no-plugin dispatch is a single dict hit instead of
        #: per-call anchor resolution.
        self._plans: dict = {}
        self._params_cache: dict[str, frozenset] = {}
        self._epoch = 0  # bumped on every invalidation
        self.plan_builds = 0  # cache fills (tests/monitoring)
        #: Per-operation run counts, populated only after
        #: :meth:`enable_run_counting` (profiling) — the default dispatch
        #: path carries no counting branch.
        self.run_counts: dict[str, int] = {}
        self._count_runs = False  # whether plans embed a counting observer

    def _invalidate(self) -> None:
        """Drop every cached call plan (an anchor or default changed)."""
        self._epoch += 1
        self._plans.clear()
        self._params_cache.clear()

    def _build_plan(self, name: str, param: Any) -> tuple:
        op = self.get(name)
        key = param if op.parameterized else None
        pre = tuple(op.pre.get(key, ()))
        if self._count_runs:
            counts = self.run_counts

            def count_run(conn, args, _name=name):
                counts[_name] = counts.get(_name, 0) + 1

            pre = (count_run,) + pre
        plan = (op, key, pre, op.behavior(key),
                tuple(op.post.get(key, ())))
        self._plans[(name, param)] = plan
        self.plan_builds += 1
        return plan

    # --- registration -----------------------------------------------------

    def register(
        self,
        name: str,
        func: Optional[Callable] = None,
        param: Any = None,
        parameterized: bool = False,
        external: bool = False,
        doc: str = "",
    ) -> ProtocolOperation:
        """Register a protoop, optionally with a built-in default behaviour.

        Calling again with a new ``param`` adds a behaviour to an existing
        parameterized operation.
        """
        op = self._ops.get(name)
        if op is None:
            op = ProtocolOperation(
                name=name, parameterized=parameterized, external=external,
                doc=doc or (func.__doc__ or "" if func else ""),
            )
            self._ops[name] = op
        else:
            if op.parameterized != parameterized:
                raise ValueError(
                    f"protoop {name}: parameterized mismatch on re-registration"
                )
        if not parameterized and param is not None:
            raise ValueError(f"protoop {name} is not parameterized")
        if func is not None:
            key = param if parameterized else None
            if key in op.defaults:
                raise ValueError(f"protoop {name}[{param}] already has a default")
            op.defaults[key] = func
        self._invalidate()
        return op

    def declare(self, name: str, parameterized: bool = False, doc: str = "") -> ProtocolOperation:
        """Declare an empty-anchor protoop: a pure event hook with no
        default behaviour (§2.2, fourth category)."""
        return self.register(name, None, parameterized=parameterized, doc=doc)

    def exists(self, name: str) -> bool:
        return name in self._ops

    def get(self, name: str) -> ProtocolOperation:
        try:
            return self._ops[name]
        except KeyError:
            raise ProtoopError(
                TransportErrorCode.INTERNAL_ERROR, f"unknown protoop {name!r}"
            )

    @property
    def names(self) -> list[str]:
        return sorted(self._ops)

    def operation_count(self) -> int:
        return len(self._ops)

    def parameterized_count(self) -> int:
        return sum(1 for op in self._ops.values() if op.parameterized)

    # --- pluglet attachment -------------------------------------------------

    def attach(
        self,
        name: str,
        anchor: Anchor,
        func: Callable,
        param: Any = None,
        external: bool = False,
    ) -> None:
        """Attach a pluglet behaviour. New protoops (or new parameter values
        of existing ones) are created on the fly — PQUIC is "extensible by
        design" (§2.3)."""
        op = self._ops.get(name)
        if op is None:
            op = ProtocolOperation(
                name=name, parameterized=param is not None, external=external
            )
            self._ops[name] = op
        key = param if op.parameterized else None
        if anchor is Anchor.REPLACE:
            if key in op.replacements:
                raise ProtoopError(
                    TransportErrorCode.PLUGIN_VALIDATION_FAILED,
                    f"protoop {name}[{param}] already replaced",
                )
            op.replacements[key] = func
        elif anchor is Anchor.PRE:
            op.pre.setdefault(key, []).append(func)
        else:
            op.post.setdefault(key, []).append(func)
        self._invalidate()

    def detach(self, name: str, anchor: Anchor, func: Callable, param: Any = None) -> None:
        op = self._ops.get(name)
        if op is None:
            return
        key = param if op.parameterized else None
        if anchor is Anchor.REPLACE:
            if op.replacements.get(key) is func:
                del op.replacements[key]
        elif anchor is Anchor.PRE:
            if key in op.pre and func in op.pre[key]:
                op.pre[key].remove(func)
        else:
            if key in op.post and func in op.post[key]:
                op.post[key].remove(func)
        self._invalidate()

    # --- dispatch ----------------------------------------------------------

    def known_params(self, name: str) -> frozenset:
        """Cached ``op.params()`` — the per-call set construction on frame
        dispatch paths is replaced by one dict hit."""
        params = self._params_cache.get(name)
        if params is None:
            params = frozenset(self.get(name).params())
            self._params_cache[name] = params
        return params

    def has_behavior(self, name: str, param: Any = None) -> bool:
        """Cached ``op.behavior(param) is not None``."""
        plan = self._plans.get((name, param))
        if plan is None:
            plan = self._build_plan(name, param)
        return plan[3] is not None

    def run(self, conn, name: str, param: Any = None, *args: Any, _from_app: bool = False) -> Any:
        """Invoke a protoop: pre anchors, behaviour, post anchors.

        Raises :class:`ProtoopError` on re-entry (call-graph loop, Fig. 3)
        or when an external operation is invoked from within the protocol.
        """
        epoch = self._epoch
        plan = self._plans.get((name, param))
        if plan is None:
            plan = self._build_plan(name, param)
        op, key, pre_chain, behavior, post_chain = plan
        if op.external and not _from_app:
            raise ProtoopError(
                TransportErrorCode.PROTOCOL_VIOLATION,
                f"external protoop {name!r} called from protocol code",
            )
        frame_key = (name, key)
        if frame_key in self._call_stack:
            raise ProtoopError(
                TransportErrorCode.PLUGIN_LOOP_DETECTED,
                f"protocol operation loop through {name}[{param}]",
            )
        self._call_stack.append(frame_key)
        self.runs += 1
        try:
            # The plan snapshots are exactly the copies the uncached
            # dispatcher iterated over; if a failing pluglet detaches its
            # plugin mid-run the epoch moves and we re-resolve the stale
            # parts, matching the uncached anchor-by-anchor timeline.
            for observer in pre_chain:  # passive, read-only
                observer(conn, args)
            if self._epoch != epoch:
                behavior = op.behavior(key)
            result = behavior(conn, *args) if behavior is not None else None
            if self._epoch != epoch:
                post_chain = tuple(op.post.get(key, ()))
            for observer in post_chain:
                observer(conn, args, result)
            return result
        finally:
            self._call_stack.pop()

    def run_external(self, conn, name: str, param: Any = None, *args: Any) -> Any:
        """Entry point for the application (§2.4)."""
        return self.run(conn, name, param, *args, _from_app=True)

    # --- profiling ---------------------------------------------------------

    def enable_run_counting(self) -> None:
        """Count runs per operation name into :attr:`run_counts`.

        Implemented by rebuilding call plans with a counting observer
        at the head of the pre chain — counting lives in the plan, the
        dispatcher itself carries no branch, so tables that never
        profile (or profiled and stopped) keep the zero-cost path.
        Method objects are never shadowed: an instance attribute over
        :meth:`run` would de-specialize CPython's per-instruction
        attribute caches for the whole dispatch loop.  Idempotent.
        """
        if self._count_runs:
            return
        self._count_runs = True
        self._invalidate()

    def disable_run_counting(self) -> None:
        if not self._count_runs:
            return
        self._count_runs = False
        self._invalidate()
