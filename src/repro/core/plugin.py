"""Protocol plugins: manifests, pluglets, per-connection instances (§2).

A *pluglet* is bytecode implementing one function, attached to one anchor
of one protocol operation.  A *manifest* names the plugin (globally
unique) and lists how its pluglets link to protocol operations.  The
combination forms a *protocol plugin*; serialized, it is exactly the
``binding = pluginname || plugincode`` of §3.1 — what validators hash into
their Merkle trees.

Instantiation (:class:`PluginInstance`) gives the plugin its dedicated
memory, one PRE (:class:`~repro.vm.interpreter.VirtualMachine`) per
pluglet sharing that heap (Figure 2), and wrapper callables that marshal
protocol-operation invocations into the VM.  A memory violation at run
time removes the plugin and terminates the connection (§2.1).
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field
from time import perf_counter
from typing import Any, Callable, Optional

from repro.errors import TransportError, TransportErrorCode
from repro.quic.wire import Buffer
from repro.vm.analysis import (
    Severity,
    analysis_enabled_by_env,
    analyze_plugin,
    check_conflicts,
    summarize_plugin,
)
from repro.vm.compiler import compile_pluglet
from repro.vm.interpreter import (
    DEFAULT_FUEL,
    DEFAULT_HELPER_BUDGET,
    ExecutionError,
    MemoryViolation,
    PluginMemory,
    VirtualMachine,
)
from repro.vm.isa import decode_program, encode_program
from repro.vm.jit import create_vm
from repro.vm.analysis import VerificationError, verify

from .api import CORE_HELPER_NAMES, ApiViolation, InvocationContext, PluginApi
from .memory import BlockAllocator
from .protoop import Anchor, ProtoopError

_NO_RESULT = object()

#: Host-side hooks per plugin-name prefix.  Pluglet bytecode is portable,
#: but the host functions a plugin calls (its extended helper set, its
#: frame codecs) live in the local implementation — the analogue of the
#: PQUIC functions exposed to the PRE.  Plugin modules register a resolver
#: so a plugin received over the wire regains its hooks.
_HOST_RESOLVERS: dict = {}


def register_host_resolver(name_prefix: str, resolver: Callable) -> None:
    """``resolver(plugin_name) -> (host_helpers, frame_registrar)``."""
    _HOST_RESOLVERS[name_prefix] = resolver


def _resolve_host_hooks(name: str):
    best = None
    for prefix in _HOST_RESOLVERS:
        if name.startswith(prefix) and (best is None or len(prefix) > len(best)):
            best = prefix
    if best is None:
        return None, None
    return _HOST_RESOLVERS[best](name)


#: Anchor wire encoding for manifests.
_ANCHORS = {"replace": 0, "pre": 1, "post": 2, "external": 3}
_ANCHORS_REV = {v: k for k, v in _ANCHORS.items()}

DEFAULT_PLUGIN_MEMORY = 16 * 1024


@dataclass
class Pluglet:
    """One bytecode function linked to a protocol operation anchor."""

    name: str
    protoop: str
    anchor: str  # replace | pre | post | external
    instructions: list
    param: Any = None  # int, str or None
    #: Per-invocation runtime budgets (0 = host default): instruction fuel
    #: and helper calls.  Part of the manifest, hence of the §3.1 binding.
    fuel: int = 0
    helper_budget: int = 0
    #: Protoops this pluglet may invoke through ``plugin_run_protoop``.
    #: Declared in the manifest because trigger targets are resolved by
    #: runtime-assigned ids, hence statically unknowable from bytecode;
    #: the conflict analyzer builds its cross-plugin call graph from this
    #: (and flags undeclared use of the helper as a wildcard, PRE204).
    triggers: tuple = ()

    def __post_init__(self):
        if self.anchor not in _ANCHORS:
            raise ValueError(f"unknown anchor {self.anchor!r}")
        if self.fuel < 0 or self.helper_budget < 0:
            raise ValueError("budgets must be >= 0 (0 = host default)")
        self.triggers = tuple(self.triggers)

    @property
    def bytecode(self) -> bytes:
        return encode_program(self.instructions)

    @classmethod
    def from_source(
        cls,
        name: str,
        protoop: str,
        anchor: str,
        source: str,
        helpers: Optional[dict] = None,
        param: Any = None,
        fuel: int = 0,
        helper_budget: int = 0,
        triggers: tuple = (),
    ) -> "Pluglet":
        """Compile restricted-Python source into a pluglet (the paper's
        C-to-eBPF step)."""
        mapping = dict(CORE_HELPER_NAMES)
        if helpers:
            mapping.update(helpers)
        return cls(
            name=name,
            protoop=protoop,
            anchor=anchor,
            instructions=compile_pluglet(source, helpers=mapping),
            param=param,
            fuel=fuel,
            helper_budget=helper_budget,
            triggers=triggers,
        )


class Plugin:
    """A manifest plus pluglets — the unit of distribution and validation."""

    def __init__(self, name: str, pluglets: list,
                 memory_size: int = DEFAULT_PLUGIN_MEMORY,
                 host_helpers: Optional[Callable] = None,
                 frame_registrar: Optional[Callable] = None):
        self.name = name  # globally unique, e.g. "org.pquic.monitoring"
        self.pluglets = pluglets
        self.memory_size = memory_size
        #: Optional factory: (runtime) -> {helper_id: callable}. The host-
        #: side functions this plugin exposes to its bytecode, the analogue
        #: of PQUIC functions exported to the PRE.
        self.host_helpers = host_helpers
        #: Optional hook: (conn) -> None registering new frame codecs.
        self.frame_registrar = frame_registrar
        self._analysis: Optional[dict] = None
        self._effects = None

    # --- serialization (the §3.1 binding) -------------------------------

    def serialize(self) -> bytes:
        """``pluginname || plugincode``: manifest and all bytecodes."""
        buf = Buffer()
        buf.push_varint_prefixed_bytes(self.name.encode("utf-8"))
        buf.push_varint(self.memory_size)
        buf.push_varint(len(self.pluglets))
        for p in self.pluglets:
            buf.push_varint_prefixed_bytes(p.name.encode("utf-8"))
            buf.push_varint_prefixed_bytes(p.protoop.encode("utf-8"))
            buf.push_uint8(_ANCHORS[p.anchor])
            if p.param is None:
                buf.push_uint8(0)
            elif isinstance(p.param, int):
                buf.push_uint8(1)
                buf.push_varint(p.param)
            else:
                buf.push_uint8(2)
                buf.push_varint_prefixed_bytes(str(p.param).encode("utf-8"))
            buf.push_varint(p.fuel)
            buf.push_varint(p.helper_budget)
            buf.push_varint(len(p.triggers))
            for trigger in p.triggers:
                buf.push_varint_prefixed_bytes(trigger.encode("utf-8"))
            buf.push_varint_prefixed_bytes(p.bytecode)
        return buf.data()

    @classmethod
    def deserialize(cls, data: bytes) -> "Plugin":
        buf = Buffer(data)
        name = buf.pull_varint_prefixed_bytes().decode("utf-8")
        memory_size = buf.pull_varint()
        count = buf.pull_varint()
        pluglets = []
        for _ in range(count):
            pname = buf.pull_varint_prefixed_bytes().decode("utf-8")
            protoop = buf.pull_varint_prefixed_bytes().decode("utf-8")
            anchor = _ANCHORS_REV[buf.pull_uint8()]
            tag = buf.pull_uint8()
            if tag == 0:
                param: Any = None
            elif tag == 1:
                param = buf.pull_varint()
            else:
                param = buf.pull_varint_prefixed_bytes().decode("utf-8")
            fuel = buf.pull_varint()
            helper_budget = buf.pull_varint()
            triggers = tuple(
                buf.pull_varint_prefixed_bytes().decode("utf-8")
                for _ in range(buf.pull_varint())
            )
            bytecode = buf.pull_varint_prefixed_bytes()
            pluglets.append(Pluglet(pname, protoop, anchor,
                                    decode_program(bytecode), param,
                                    fuel=fuel, helper_budget=helper_budget,
                                    triggers=triggers))
        host_helpers, frame_registrar = _resolve_host_hooks(name)
        return cls(name, pluglets, memory_size=memory_size,
                   host_helpers=host_helpers, frame_registrar=frame_registrar)

    def compressed(self) -> bytes:
        """The ZIP-compressed exchange format (§3.4 / Table 2)."""
        return zlib.compress(self.serialize(), level=9)

    @classmethod
    def decompress(cls, data: bytes) -> "Plugin":
        return cls.deserialize(zlib.decompress(data))

    def verify_all(self) -> None:
        """Static verification of every pluglet; §2.1: "A plugin is
        rejected if any of the above checks fails for one of its
        pluglets."""
        for p in self.pluglets:
            try:
                verify(p.instructions)
            except VerificationError as exc:
                raise VerificationError(
                    f"plugin {self.name}: pluglet {p.name}: {exc}"
                )

    def analyze_all(self) -> dict:
        """Static-analyzer reports for every pluglet, keyed by pluglet
        name.  Cached: the pluglet list is immutable once distributed (it
        is the §3.1 binding), so one analysis serves every connection the
        plugin attaches to."""
        if self._analysis is None:
            self._analysis = analyze_plugin(self)
        return self._analysis

    def effect_summaries(self):
        """Per-pluglet effect summaries (fields read/written, helpers,
        declared triggers) for the inter-plugin conflict analyzer.
        Cached for the same reason as :meth:`analyze_all`."""
        if self._effects is None:
            from .api import HELPER_EFFECTS

            self._effects = summarize_plugin(self, HELPER_EFFECTS)
        return self._effects

    def stats(self) -> dict:
        """Table-2 style statistics."""
        raw = self.serialize()
        return {
            "name": self.name,
            "pluglets": len(self.pluglets),
            "instructions": sum(len(p.instructions) for p in self.pluglets),
            "size_bytes": len(raw),
            "compressed_bytes": len(self.compressed()),
        }


class PluginRuntime:
    """Per-(plugin, connection) execution state shared by the helpers."""

    def __init__(self, plugin: Plugin, conn):
        self.plugin = plugin
        self.plugin_name = plugin.name
        self.conn = conn
        self.memory = PluginMemory(plugin.memory_size)
        self.allocator = BlockAllocator(self.memory)
        self._opaque: dict[int, int] = {}  # oid -> address
        self.context: Optional[InvocationContext] = None
        self.fields_read: set = set()
        self.fields_written: set = set()
        #: Plugin-specific host helpers (helper_id -> callable).
        self.extra_helpers: dict = {}
        #: Frame constructors usable through reserve_frames
        #: (ctor_id -> callable(runtime, args) -> ReservedFrame).
        self.frame_ctors: dict = {}
        self._protoop_ids: dict[int, str] = {}
        self._protoop_ids_rev: dict[str, int] = {}
        #: Host helpers may deposit a Python object here to become the
        #: protoop result (e.g. a parsed Frame); the wrapper returns it in
        #: place of the pluglet's integer r0.
        self.pending_result: Any = _NO_RESULT
        if plugin.host_helpers is not None:
            self.extra_helpers.update(plugin.host_helpers(self))

    def set_result(self, value: Any) -> None:
        self.pending_result = value

    # --- naming -----------------------------------------------------------

    def protoop_id(self, name: str) -> int:
        """Stable numeric id for a protoop name (for bytecode use)."""
        if name not in self._protoop_ids_rev:
            new_id = len(self._protoop_ids_rev) + 1
            self._protoop_ids_rev[name] = new_id
            self._protoop_ids[new_id] = name
        return self._protoop_ids_rev[name]

    def protoop_name(self, op_id: int) -> str:
        try:
            return self._protoop_ids[op_id]
        except KeyError:
            raise ApiViolation(f"unknown protoop id {op_id}")

    # --- policy / monitoring -------------------------------------------------

    def record_access(self, field_name: str, write: bool) -> None:
        (self.fields_written if write else self.fields_read).add(field_name)

    def check_policy(self, field_name: str, write: bool) -> None:
        policy = getattr(self.conn, "field_policy", None)
        if policy is None:
            return
        policy.check(self.plugin_name, field_name, write)

    # --- frame reservation -------------------------------------------------

    def reserve_frame(self, ctor_id: int, args: tuple) -> int:
        ctor = self.frame_ctors.get(ctor_id)
        if ctor is None:
            raise ApiViolation(f"unknown frame constructor {ctor_id}")
        reserved = ctor(self, args)
        if reserved is None:
            return 0
        self.conn.reserve_frames([reserved])
        return 1

    # --- opaque data ------------------------------------------------------

    def opaque_data(self, oid: int, size: int) -> int:
        """Named plugin-memory areas pluglets retrieve consistently."""
        if oid not in self._opaque:
            self._opaque[oid] = self.allocator.malloc(size)
        return self._opaque[oid]

    def reset_for_reuse(self) -> None:
        """Reinitialize the heap for a new connection (§2.5)."""
        self.allocator.reset()
        self._opaque.clear()


class PluginInstance:
    """A plugin instantiated on one connection: PREs + wrappers + heap."""

    def __init__(self, plugin: Plugin, conn):
        plugin.verify_all()
        self.plugin = plugin
        self.conn = conn
        self.runtime = PluginRuntime(plugin, conn)
        api = PluginApi(self.runtime)
        helper_table = api.helper_table()
        self.vms: dict[str, VirtualMachine] = {}
        self._attached: list = []  # (protoop, anchor, func, param)
        #: Static-analysis reports per pluglet — drives proof-guided JIT
        #: specialization and the ``plugin_analyzed`` event; empty when
        #: ``REPRO_ANALYSIS=0``.
        self.analysis_reports: dict = (
            plugin.analyze_all() if analysis_enabled_by_env() else {}
        )
        for p in plugin.pluglets:
            # JIT-compiled PRE with automatic interpreter fallback (the
            # paper JITs pluglet bytecode; see repro/vm/jit.py).  Proofs
            # from the analyzer let the JIT drop its inlined monitor.
            self.vms[p.name] = create_vm(
                p.instructions, self.runtime.memory, helpers=helper_table,
                instruction_budget=p.fuel or DEFAULT_FUEL,
                helper_call_budget=p.helper_budget or DEFAULT_HELPER_BUDGET,
                analysis=self.analysis_reports.get(p.name),
            )
        self.attached = False
        #: PRE profiler (see :mod:`repro.trace.profile`), None when
        #: profiling is off — the only cost then is this one attribute
        #: test per invocation.
        self._profiler = getattr(conn, "profiler", None)

    # --- invocation -----------------------------------------------------------

    def _run_profiled(self, vm, pluglet: Pluglet, marshaled: list) -> Any:
        """Run the PRE under the profiler: attribute the fuel / helper /
        wall-time deltas of this invocation to (plugin, pluglet, protoop),
        recording faulting runs too."""
        fuel0 = vm.instructions_executed
        helpers0 = vm.helper_calls_made
        fault = True
        t0 = perf_counter()
        try:
            value = vm.run(*marshaled)
            fault = False
            return value
        finally:
            self._profiler.record(
                self.plugin.name, pluglet.name, pluglet.protoop,
                fuel=vm.instructions_executed - fuel0,
                helper_calls=vm.helper_calls_made - helpers0,
                wall_s=perf_counter() - t0,
                jit=vm.execution_path == "jit",
                fault=fault,
            )

    def invoke(self, pluglet: Pluglet, args: tuple, writable: bool) -> Any:
        vm = self.vms[pluglet.name]
        ctx = InvocationContext(args, writable)
        previous = self.runtime.context
        previous_result = self.runtime.pending_result
        self.runtime.context = ctx
        self.runtime.pending_result = _NO_RESULT
        try:
            marshaled = [ctx.marshal(i) for i in range(min(5, len(args)))]
            if self._profiler is None:
                value = vm.run(*marshaled)
            else:
                value = self._run_profiled(vm, pluglet, marshaled)
            if self.runtime.pending_result is not _NO_RESULT:
                return self.runtime.pending_result
            return value
        except (MemoryViolation, ExecutionError, ApiViolation,
                ProtoopError) as exc:
            containment = getattr(self.conn, "containment", None)
            if containment is not None and containment.on_pluglet_failure(
                self, pluglet.name, exc
            ):
                # Contained: the plugin was detached and quarantined, the
                # connection proceeds without it.
                return None
            self._on_runtime_failure(exc)
            if isinstance(exc, (ApiViolation, ProtoopError)):
                raise
            raise TransportError(
                TransportErrorCode.PLUGIN_MEMORY_VIOLATION
                if isinstance(exc, MemoryViolation)
                else TransportErrorCode.PLUGIN_RUNTIME_ERROR,
                f"plugin {self.plugin.name}: pluglet {pluglet.name}: {exc}",
            )
        finally:
            self.runtime.context = previous
            self.runtime.pending_result = previous_result

    def _on_runtime_failure(self, exc: Exception) -> None:
        """§2.1: any violation of memory safety results in the removal of
        the plugin and the termination of the connection."""
        self.detach()
        error = TransportError(
            TransportErrorCode.PLUGIN_MEMORY_VIOLATION
            if isinstance(exc, MemoryViolation)
            else TransportErrorCode.PLUGIN_RUNTIME_ERROR,
            str(exc),
        )
        self.conn.abort_on_plugin_failure(error)

    # --- attachment -----------------------------------------------------------

    def attach(self) -> None:
        """Insert every pluglet at its anchor; on any failure (e.g. a
        second ``replace`` on the same protoop) the whole plugin is rolled
        back (§2.2)."""
        if self.attached:
            return
        conflicts = self._check_conflicts()
        try:
            if self.plugin.frame_registrar is not None:
                self.plugin.frame_registrar(self.conn)
            for pluglet in self.plugin.pluglets:
                self._attach_one(pluglet)
        except ProtoopError:
            self.detach()
            raise
        self.attached = True
        self.conn.plugins[self.plugin.name] = self
        self.conn.protoops.run(self.conn, "plugin_injected", None, self.plugin.name)
        self._emit_analysis_event()
        self._emit_conflict_event(conflicts)

    def _check_conflicts(self) -> list:
        """Attach-time inter-plugin compatibility check: the incoming
        plugin's effect summaries against the already-attached set.  An
        error-severity conflict (``PRE200``/``PRE203``) rejects the plugin
        before anything is registered; warnings ride along in the
        ``plugin:conflict_report`` event.  Disabled (with the rest of the
        attach-time analysis) by ``REPRO_ANALYSIS=0`` — hard collisions
        are still caught by the protoop table at registration time, so
        the rejection outcome is mode-independent."""
        if not self.analysis_reports:
            return []
        from .api import FIELD_NAMES

        attached = [
            instance.plugin.effect_summaries()
            for instance in self.conn.plugins.values()
            if instance is not self
        ]
        diags = check_conflicts(attached, self.plugin.effect_summaries(),
                                FIELD_NAMES)
        errors = [d for d in diags if d.severity is Severity.ERROR]
        if errors:
            raise ProtoopError(
                TransportErrorCode.PLUGIN_VALIDATION_FAILED,
                f"plugin {self.plugin.name} conflicts with attached set: "
                f"{errors[0].rule}: {errors[0].message}",
            )
        return diags

    def _emit_conflict_event(self, conflicts: list) -> None:
        """Surface the (non-fatal) compatibility report as a protoop event
        (traced as ``plugin:conflict_report``)."""
        if not conflicts:
            return
        table = self.conn.protoops
        if not table.exists("plugin_conflict_report"):
            table.declare("plugin_conflict_report")
        rules = ",".join(sorted({d.rule for d in conflicts}))
        table.run(self.conn, "plugin_conflict_report", None,
                  self.plugin.name, len(conflicts), rules)

    def _emit_analysis_event(self) -> None:
        """Surface the attach-time static analysis as a protoop event
        (traced as ``plugin:analysis``): diagnostic totals plus how many
        pluglets were proven fully memory-safe."""
        reports = self.analysis_reports
        if not reports:
            return
        table = self.conn.protoops
        if not table.exists("plugin_analyzed"):
            table.declare("plugin_analyzed")
        errors = sum(len(r.errors()) for r in reports.values())
        warnings = sum(len(r.warnings()) for r in reports.values())
        proven = sum(1 for r in reports.values() if r.memory_safe)
        table.run(self.conn, "plugin_analyzed", None, self.plugin.name,
                  len(reports), errors, warnings, proven)

    def _attach_one(self, pluglet: Pluglet) -> None:
        table = self.conn.protoops
        if pluglet.anchor == "replace":
            func = self._make_replace(pluglet)
            table.attach(pluglet.protoop, Anchor.REPLACE, func, param=pluglet.param)
            self._attached.append((pluglet.protoop, Anchor.REPLACE, func, pluglet.param))
        elif pluglet.anchor == "external":
            func = self._make_replace(pluglet)
            table.attach(pluglet.protoop, Anchor.REPLACE, func,
                         param=pluglet.param, external=True)
            self._attached.append((pluglet.protoop, Anchor.REPLACE, func, pluglet.param))
        elif pluglet.anchor == "pre":
            func = self._make_pre(pluglet)
            table.attach(pluglet.protoop, Anchor.PRE, func, param=pluglet.param)
            self._attached.append((pluglet.protoop, Anchor.PRE, func, pluglet.param))
        else:
            func = self._make_post(pluglet)
            table.attach(pluglet.protoop, Anchor.POST, func, param=pluglet.param)
            self._attached.append((pluglet.protoop, Anchor.POST, func, pluglet.param))

    def _make_replace(self, pluglet: Pluglet) -> Callable:
        def run_replace(conn, *args):
            return self.invoke(pluglet, args, writable=True)

        run_replace.pluglet = pluglet  # type: ignore[attr-defined]
        return run_replace

    def _make_pre(self, pluglet: Pluglet) -> Callable:
        def run_pre(conn, args):
            self.invoke(pluglet, args, writable=False)

        run_pre.pluglet = pluglet  # type: ignore[attr-defined]
        return run_pre

    def _make_post(self, pluglet: Pluglet) -> Callable:
        def run_post(conn, args, result):
            self.invoke(pluglet, tuple(args) + (result,), writable=False)

        run_post.pluglet = pluglet  # type: ignore[attr-defined]
        return run_post

    def detach(self) -> None:
        table = self.conn.protoops
        for protoop, anchor, func, param in self._attached:
            table.detach(protoop, anchor, func, param=param)
        self._attached.clear()
        self.attached = False
        # Only drop the name registration if it is ours: a rolled-back
        # second plugin with the same name must not evict the first.
        if self.conn.plugins.get(self.plugin.name) is self:
            del self.conn.plugins[self.plugin.name]
