"""The PQUIC API exposed to pluglet bytecode (Table 1).

====================  =====================================================
``get`` / ``set``     Access/modify connection fields (by field id).
``pl_malloc/pl_free`` Management of the plugin memory.
``get_opaque_data``   Retrieve a memory area shared by pluglets.
``pl_memcpy/memset``  Access/modify data outside the PRE (checked).
``plugin_run_protoop``Execute protocol operations.
``reserve_frames``    Book the sending of QUIC frames.
====================  =====================================================

plus invocation-argument accessors and a message-push channel (§2.4).

Field access is mediated: every field has a human-readable name, reads and
writes are recorded per plugin, and the host can refuse plugins touching
fields its policy forbids ("a client could refuse plugins that modify the
Spin Bit").  Passive (pre/post) pluglets are denied ``set`` — they "only
have read access to the connection context" (§2.2).

Times are marshaled as microseconds; floats never enter the VM.
"""

from __future__ import annotations

from typing import Any, Callable, Optional

from repro.errors import TransportError, TransportErrorCode
from repro.vm.analysis import HelperEffect
from repro.vm.interpreter import MemoryViolation

# Helper ids (CALL immediates).
H_GET = 1
H_SET = 2
H_PL_MALLOC = 3
H_PL_FREE = 4
H_GET_OPAQUE_DATA = 5
H_PL_MEMCPY = 6
H_PL_MEMSET = 7
H_RUN_PROTOOP = 8
H_RESERVE_FRAME = 9
H_GET_INPUT = 10
H_INPUT_LEN = 11
H_READ_INPUT_BYTES = 12
H_WRITE_INPUT_BYTES = 13
H_PUSH_MESSAGE = 14
H_GET_TIME_US = 15
#: First helper id available to plugin-specific host functions.
H_PLUGIN_BASE = 64

CORE_HELPER_NAMES = {
    "get": H_GET,
    "set": H_SET,
    "pl_malloc": H_PL_MALLOC,
    "pl_free": H_PL_FREE,
    "get_opaque_data": H_GET_OPAQUE_DATA,
    "pl_memcpy": H_PL_MEMCPY,
    "pl_memset": H_PL_MEMSET,
    "plugin_run_protoop": H_RUN_PROTOOP,
    "reserve_frames": H_RESERVE_FRAME,
    "get_input": H_GET_INPUT,
    "input_len": H_INPUT_LEN,
    "read_input_bytes": H_READ_INPUT_BYTES,
    "write_input_bytes": H_WRITE_INPUT_BYTES,
    "push_message": H_PUSH_MESSAGE,
    "get_time_us": H_GET_TIME_US,
}

US = 1_000_000


def _us(seconds: float) -> int:
    return int(seconds * US)


class FieldSpec:
    """One accessible connection field."""

    def __init__(self, name: str, getter: Callable, setter: Optional[Callable] = None):
        self.name = name
        self.getter = getter
        self.setter = setter


# Field ids — the stable ABI between pluglets and hosts.
FLD_PACKETS_SENT = 0x01
FLD_PACKETS_RECEIVED = 0x02
FLD_BYTES_SENT = 0x03
FLD_BYTES_RECEIVED = 0x04
FLD_PACKETS_LOST = 0x05
FLD_ACKS_RECEIVED = 0x06
FLD_FRAMES_RECEIVED = 0x07
FLD_SPURIOUS_RECEIVED = 0x08
FLD_ECN_CE_RECEIVED = 0x09
FLD_SRTT_US = 0x10
FLD_RTT_VAR_US = 0x11
FLD_MIN_RTT_US = 0x12
FLD_LATEST_RTT_US = 0x13
FLD_CWND = 0x20
FLD_BYTES_IN_FLIGHT = 0x21
FLD_NB_PATHS = 0x30
FLD_PATH_ACTIVE = 0x31
FLD_PATH_VALIDATED = 0x32
FLD_MAX_DATA_LOCAL = 0x40
FLD_MAX_DATA_REMOTE = 0x41
FLD_DATA_SENT = 0x42
FLD_DATA_RECEIVED = 0x43
FLD_SPIN_BIT = 0x50
FLD_IS_CLIENT = 0x51
FLD_HANDSHAKE_COMPLETE = 0x52
FLD_NEXT_PN = 0x60
FLD_LARGEST_ACKED = 0x61
FLD_ACK_NEEDED = 0x62


def _stat(key):
    return lambda conn, i: conn.stats[key]


def _path(conn, i):
    if not 0 <= i < len(conn.paths):
        raise ApiViolation(f"bad path index {i}")
    return conn.paths[i]


def _set_spin(conn, i, v):
    conn.spin_bit = bool(v)


FIELD_TABLE: dict[int, FieldSpec] = {
    FLD_PACKETS_SENT: FieldSpec("packets_sent", _stat("packets_sent")),
    FLD_PACKETS_RECEIVED: FieldSpec("packets_received", _stat("packets_received")),
    FLD_BYTES_SENT: FieldSpec("bytes_sent", _stat("bytes_sent")),
    FLD_BYTES_RECEIVED: FieldSpec("bytes_received", _stat("bytes_received")),
    FLD_PACKETS_LOST: FieldSpec("packets_lost", _stat("packets_lost")),
    FLD_ACKS_RECEIVED: FieldSpec("acks_received", _stat("acks_received")),
    FLD_FRAMES_RECEIVED: FieldSpec("frames_received", _stat("frames_received")),
    FLD_SPURIOUS_RECEIVED: FieldSpec("spurious_received", _stat("spurious_received")),
    FLD_ECN_CE_RECEIVED: FieldSpec("ecn_ce_received", _stat("ecn_ce_received")),
    FLD_SRTT_US: FieldSpec("srtt", lambda c, i: _us(_path(c, i).rtt.smoothed)),
    FLD_RTT_VAR_US: FieldSpec("rtt_variance", lambda c, i: _us(_path(c, i).rtt.variance)),
    FLD_MIN_RTT_US: FieldSpec(
        "min_rtt",
        lambda c, i: 0 if _path(c, i).rtt.min_rtt == float("inf")
        else _us(_path(c, i).rtt.min_rtt),
    ),
    FLD_LATEST_RTT_US: FieldSpec("latest_rtt", lambda c, i: _us(_path(c, i).rtt.latest)),
    FLD_CWND: FieldSpec(
        "cwnd",
        lambda c, i: int(_path(c, i).cc.cwnd),
        lambda c, i, v: setattr(_path(c, i).cc, "cwnd", max(int(v), 2560)),
    ),
    FLD_BYTES_IN_FLIGHT: FieldSpec(
        "bytes_in_flight", lambda c, i: _path(c, i).cc.bytes_in_flight
    ),
    FLD_NB_PATHS: FieldSpec("nb_paths", lambda c, i: len(c.paths)),
    FLD_PATH_ACTIVE: FieldSpec(
        "path_active",
        lambda c, i: int(_path(c, i).active),
        lambda c, i, v: setattr(_path(c, i), "active", bool(v)),
    ),
    FLD_PATH_VALIDATED: FieldSpec(
        "path_validated", lambda c, i: int(_path(c, i).validated)
    ),
    FLD_MAX_DATA_LOCAL: FieldSpec("max_data_local", lambda c, i: c.max_data_local),
    FLD_MAX_DATA_REMOTE: FieldSpec("max_data_remote", lambda c, i: c.max_data_remote),
    FLD_DATA_SENT: FieldSpec("data_sent", lambda c, i: c.data_sent),
    FLD_DATA_RECEIVED: FieldSpec("data_received", lambda c, i: c.data_received),
    FLD_SPIN_BIT: FieldSpec("spin_bit", lambda c, i: int(c.spin_bit), _set_spin),
    FLD_IS_CLIENT: FieldSpec("is_client", lambda c, i: int(c.is_client)),
    FLD_HANDSHAKE_COMPLETE: FieldSpec(
        "handshake_complete", lambda c, i: int(c.handshake_complete)
    ),
    FLD_NEXT_PN: FieldSpec(
        "next_packet_number", lambda c, i: _path(c, i).space.next_packet_number
    ),
    FLD_LARGEST_ACKED: FieldSpec(
        "largest_acked", lambda c, i: _path(c, i).space.largest_acked & ((1 << 64) - 1)
    ),
    FLD_ACK_NEEDED: FieldSpec(
        "ack_needed", lambda c, i: int(_path(c, i).space.ack_needed)
    ),
}

#: Field id -> stable field name, for conflict-report diagnostics.
FIELD_NAMES = {fid: spec.name for fid, spec in FIELD_TABLE.items()}

#: Declarative effect metadata for the core helper table: what each
#: helper does to shared host state.  ``field_arg`` is the 0-based
#: argument index (0 = r1) carrying the field id; the effect-summary
#: analysis (:mod:`repro.vm.analysis.summaries`) resolves it from the
#: interval domain when it is statically constant.
HELPER_EFFECTS: dict[int, HelperEffect] = {
    H_GET: HelperEffect("get", field_arg=0),
    H_SET: HelperEffect("set", field_arg=0, writes_field=True),
    H_PL_MALLOC: HelperEffect("pl_malloc"),
    H_PL_FREE: HelperEffect("pl_free"),
    H_GET_OPAQUE_DATA: HelperEffect("get_opaque_data"),
    H_PL_MEMCPY: HelperEffect("pl_memcpy"),
    H_PL_MEMSET: HelperEffect("pl_memset"),
    H_RUN_PROTOOP: HelperEffect("plugin_run_protoop",
                                triggers_protoop=True),
    H_RESERVE_FRAME: HelperEffect("reserve_frames"),
    H_GET_INPUT: HelperEffect("get_input"),
    H_INPUT_LEN: HelperEffect("input_len"),
    H_READ_INPUT_BYTES: HelperEffect("read_input_bytes"),
    H_WRITE_INPUT_BYTES: HelperEffect("write_input_bytes"),
    H_PUSH_MESSAGE: HelperEffect("push_message"),
    H_GET_TIME_US: HelperEffect("get_time_us"),
}


class ApiViolation(TransportError):
    """A pluglet misused the API (bad field, write from passive anchor...)."""

    def __init__(self, reason: str):
        super().__init__(TransportErrorCode.PLUGIN_RUNTIME_ERROR, reason)


class InvocationContext:
    """Per-invocation state shared between the wrapper and the helpers."""

    def __init__(self, args: tuple, writable: bool):
        self.raw_args = args
        self.writable = writable
        #: Marshaled scalar views of the args (objects become handles).
        self.handles: list[Any] = list(args)

    def marshal(self, index: int) -> int:
        if not 0 <= index < len(self.raw_args):
            return 0
        value = self.raw_args[index]
        if isinstance(value, bool):
            return int(value)
        if isinstance(value, int):
            return value & ((1 << 64) - 1)
        if isinstance(value, float):
            return _us(value) & ((1 << 64) - 1)
        if value is None:
            return 0
        # Objects (frames, packets, byte strings) are referenced by their
        # argument index: an opaque handle the pluglet can pass back to
        # helpers, never a raw pointer.
        return index


class PluginApi:
    """Builds the helper dispatch table for one plugin instance."""

    def __init__(self, runtime):
        self.runtime = runtime  # PluginRuntime (see repro.core.plugin)

    def helper_table(self) -> dict:
        table = {
            H_GET: self._h_get,
            H_SET: self._h_set,
            H_PL_MALLOC: self._h_malloc,
            H_PL_FREE: self._h_free,
            H_GET_OPAQUE_DATA: self._h_opaque,
            H_PL_MEMCPY: self._h_memcpy,
            H_PL_MEMSET: self._h_memset,
            H_RUN_PROTOOP: self._h_run_protoop,
            H_RESERVE_FRAME: self._h_reserve_frame,
            H_GET_INPUT: self._h_get_input,
            H_INPUT_LEN: self._h_input_len,
            H_READ_INPUT_BYTES: self._h_read_input,
            H_WRITE_INPUT_BYTES: self._h_write_input,
            H_PUSH_MESSAGE: self._h_push_message,
            H_GET_TIME_US: self._h_time,
        }
        for hid, fn in self.runtime.extra_helpers.items():
            table[hid] = fn
        return table

    # --- field access -----------------------------------------------------

    def _field(self, field_id: int) -> FieldSpec:
        spec = FIELD_TABLE.get(field_id)
        if spec is None:
            raise ApiViolation(f"unknown field id 0x{field_id:x}")
        return spec

    def _h_get(self, vm, field_id, index, *_):
        spec = self._field(field_id)
        self.runtime.record_access(spec.name, write=False)
        self.runtime.check_policy(spec.name, write=False)
        return spec.getter(self.runtime.conn, index)

    def _h_set(self, vm, field_id, index, value, *_):
        spec = self._field(field_id)
        ctx = self.runtime.context
        if ctx is not None and not ctx.writable:
            raise ApiViolation(
                f"passive pluglet attempted to set field {spec.name!r}"
            )
        if spec.setter is None:
            raise ApiViolation(f"field {spec.name!r} is read-only")
        self.runtime.record_access(spec.name, write=True)
        self.runtime.check_policy(spec.name, write=True)
        spec.setter(self.runtime.conn, index, value)
        return 0

    # --- plugin memory -----------------------------------------------------

    def _h_malloc(self, vm, size, *_):
        return self.runtime.allocator.malloc(size)

    def _h_free(self, vm, address, *_):
        self.runtime.allocator.free(address)
        return 0

    def _h_opaque(self, vm, oid, size, *_):
        return self.runtime.opaque_data(oid, size)

    def _h_memcpy(self, vm, dst, src, length, *_):
        if length > self.runtime.memory.size:
            raise MemoryViolation("memcpy length exceeds plugin memory")
        stack = vm.current_stack if vm.current_stack is not None else bytearray(0)
        data = bytes(vm.load(src + i, 1, stack) for i in range(length))
        for i, byte in enumerate(data):
            vm.store(dst + i, 1, byte, stack)
        return dst

    def _h_memset(self, vm, dst, value, length, *_):
        if length > self.runtime.memory.size:
            raise MemoryViolation("memset length exceeds plugin memory")
        stack = vm.current_stack if vm.current_stack is not None else bytearray(0)
        for i in range(length):
            vm.store(dst + i, 1, value & 0xFF, stack)
        return dst

    # --- protocol operations -------------------------------------------------

    def _h_run_protoop(self, vm, op_id, param, nargs, a1, a2):
        """plugin_run_protoop(op_id, param, nargs, a1, a2): the bytecode
        states how many arguments the operation takes (0-2)."""
        name = self.runtime.protoop_name(op_id)
        param_value = None if param == (1 << 64) - 1 or param == -1 else param
        args = (a1, a2)[: min(nargs, 2)]
        result = self.runtime.conn.protoops.run(
            self.runtime.conn, name, param_value, *args
        )
        if isinstance(result, bool):
            return int(result)
        if isinstance(result, int):
            return result
        if isinstance(result, float):
            return _us(result)
        return 0

    def _h_reserve_frame(self, vm, ctor_id, a1, a2, a3, a4):
        ctx = self.runtime.context
        return self.runtime.reserve_frame(ctor_id, (a1, a2, a3, a4))

    # --- invocation arguments -----------------------------------------------

    def _h_get_input(self, vm, index, *_):
        ctx = self.runtime.context
        if ctx is None:
            return 0
        return ctx.marshal(index)

    def _h_input_len(self, vm, index, *_):
        ctx = self.runtime.context
        if ctx is None or not 0 <= index < len(ctx.raw_args):
            return 0
        value = ctx.raw_args[index]
        if isinstance(value, (bytes, bytearray)):
            return len(value)
        return 0

    def _h_read_input(self, vm, index, dst, offset, length, *_):
        """Copy part of a bytes argument into plugin memory / stack."""
        ctx = self.runtime.context
        if ctx is None or not 0 <= index < len(ctx.raw_args):
            raise ApiViolation(f"no bytes input {index}")
        value = ctx.raw_args[index]
        if not isinstance(value, (bytes, bytearray)):
            raise ApiViolation(f"input {index} is not bytes")
        chunk = bytes(value[offset:offset + length])
        stack = vm.current_stack if vm.current_stack is not None else bytearray(0)
        for i, byte in enumerate(chunk):
            vm.store(dst + i, 1, byte, stack)
        return len(chunk)

    def _h_write_input(self, vm, index, src, offset, length, *_):
        """Write into a mutable (bytearray) argument — e.g. an output
        buffer handed to a write_frame pluglet. Bounds are checked on both
        sides ("The API keeps control on the plugin operations")."""
        ctx = self.runtime.context
        if ctx is None or not ctx.writable:
            raise ApiViolation("write_input_bytes from passive pluglet")
        if not 0 <= index < len(ctx.raw_args):
            raise ApiViolation(f"no input {index}")
        target = ctx.raw_args[index]
        if not isinstance(target, bytearray):
            raise ApiViolation(f"input {index} is not a writable buffer")
        if offset + length > len(target):
            raise ApiViolation("write beyond output buffer")
        stack = vm.current_stack if vm.current_stack is not None else bytearray(0)
        data = bytes(vm.load(src + i, 1, stack) for i in range(length))
        target[offset:offset + length] = data
        return length

    # --- application channel ---------------------------------------------------

    def _h_push_message(self, vm, addr, length, *_):
        stack = vm.current_stack if vm.current_stack is not None else bytearray(0)
        data = bytes(vm.load(addr + i, 1, stack) for i in range(length))
        self.runtime.conn.push_message_to_app(self.runtime.plugin_name, data)
        return 0

    def _h_time(self, vm, *_):
        return _us(self.runtime.conn.now)
