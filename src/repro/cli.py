"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``demo [name]``         — run one of the example scenarios inline;
* ``transfer``            — one PQUIC GET transfer with chosen plugins;
* ``vpn``                 — TCP-through-VPN DCT comparison (Figure 8's metric);
* ``protoops``            — list the protocol-operation registry;
* ``inspect <plugin>``    — stats + verification + termination report for
  a built-in plugin;
* ``trace``               — a transfer with the qlog tracer: JSON to
  stdout, or schema-validated streaming JSONL via ``--jsonl``;
* ``profile``             — a transfer with PRE profiling: per-pluglet
  fuel / wall-time / helper-call attribution;
* ``lint [target...]``    — static analyzer + manifest linter over
  built-in plugins, ``.s`` assembly files, or directories of them;
  exits non-zero when any error-severity diagnostic fires;
* ``conform``             — differential conformance sweeps: run a named
  suite, a seeded random sweep or a saved repro file across the
  kill-switch mode matrix, shrink any failure to a minimal repro.
"""

from __future__ import annotations

import argparse
import sys

BUILTIN_PLUGINS = {
    "monitoring": lambda: _import("repro.plugins.monitoring",
                                  "build_monitoring_plugin")(),
    "datagram": lambda: _import("repro.plugins.datagram",
                                "build_datagram_plugin")(),
    "multipath": lambda: _import("repro.plugins.multipath",
                                 "build_multipath_plugin")(),
    "fec-xor": lambda: _import("repro.plugins.fec", "build_fec_plugin")("xor", "full"),
    "fec-rlc": lambda: _import("repro.plugins.fec", "build_fec_plugin")("rlc", "full"),
    "fec-rlc-eos": lambda: _import("repro.plugins.fec", "build_fec_plugin")("rlc", "eos"),
    "ccontrol": lambda: _import("repro.plugins.ccontrol",
                                "build_ccontrol_plugin")(),
    "ecn": lambda: _import("repro.plugins.ecn", "build_ecn_plugin")(),
}


def _import(module: str, name: str):
    import importlib

    return getattr(importlib.import_module(module), name)


def cmd_demo(args) -> int:
    import importlib

    module = importlib.import_module(f"examples.{args.name}")
    module.main()
    return 0


def cmd_transfer(args) -> int:
    from repro.experiments import run_quic_transfer

    builders = [BUILTIN_PLUGINS[p] for p in args.plugins]
    result = run_quic_transfer(
        args.size, d_ms=args.delay, bw_mbps=args.bandwidth,
        loss_pct=args.loss, seed=args.seed,
        client_plugins=builders, server_plugins=builders,
        multipath="multipath" in args.plugins,
    )
    if not result.completed:
        print("transfer did not complete", file=sys.stderr)
        return 1
    print(f"downloaded {args.size} bytes in {result.dct:.3f}s "
          f"({args.size * 8 / result.dct / 1e6:.2f} Mbps)")
    for key, value in sorted(result.client_stats.items()):
        print(f"  {key}: {value}")
    return 0


def cmd_vpn(args) -> int:
    from repro.experiments import run_tcp_direct, run_tcp_through_tunnel

    direct = run_tcp_direct(args.size, d_ms=args.delay,
                            bw_mbps=args.bandwidth, seed=args.seed)
    tunnel = run_tcp_through_tunnel(
        args.size, d_ms=args.delay, bw_mbps=args.bandwidth, seed=args.seed,
        multipath=args.multipath,
    )
    print(f"direct: {direct.dct:.3f}s   tunnel: {tunnel.dct:.3f}s   "
          f"ratio: {tunnel.dct / direct.dct:.3f}")
    return 0


def cmd_protoops(args) -> int:
    from repro.quic import QuicConfiguration
    from repro.quic.connection import QuicConnection

    conn = QuicConnection(QuicConfiguration(is_client=True))
    table = conn.protoops
    print(f"{table.operation_count()} protocol operations "
          f"({table.parameterized_count()} parameterized)")
    for name in table.names:
        op = table.get(name)
        kind = "param" if op.parameterized else (
            "external" if op.external else (
                "event" if not op.defaults else "op"))
        print(f"  {name:<32} [{kind}]")
    return 0


def cmd_inspect(args) -> int:
    from repro.termination import check_termination

    plugin = BUILTIN_PLUGINS[args.plugin]()
    stats = plugin.stats()
    print(f"plugin {stats['name']}")
    print(f"  pluglets:     {stats['pluglets']}")
    print(f"  instructions: {stats['instructions']}")
    print(f"  serialized:   {stats['size_bytes']} B "
          f"({stats['compressed_bytes']} B compressed)")
    plugin.verify_all()
    print("  verification: all pluglets pass the static checks")
    for pluglet in plugin.pluglets:
        report = check_termination(pluglet.instructions)
        mark = "proved" if report.proven else "NOT PROVEN"
        print(f"  {mark:>10}  {pluglet.name} "
              f"({pluglet.anchor} @ {pluglet.protoop})")
    return 0


def _lint_builtin(name: str, conn, protoop_names, plugin_objs) -> list:
    """Lint one built-in plugin with the host's protoop and helper sets."""
    from repro.core.api import PluginApi
    from repro.core.plugin import PluginRuntime
    from repro.vm.analysis import lint_plugin

    plugin = BUILTIN_PLUGINS[name]()
    plugin_objs.append(plugin)
    runtime = PluginRuntime(plugin, conn)
    helper_ids = set(PluginApi(runtime).helper_table())
    helper_ids.update(runtime.extra_helpers)
    return [(name, d)
            for d in lint_plugin(plugin, protoop_names, helper_ids)]


def _load_plugin_set_file(path):
    """Parse a ``.json`` plugin-set file into Plugin objects.

    Format: ``{"pair": [{"name": ..., "pluglets": [{"name", "protoop",
    "anchor", "source", "param"?, "fuel"?, "helper_budget"?,
    "triggers"?}, ...]}, ...]}`` — restricted-Python sources are compiled
    on the fly (the corpus under ``tests/corpus/pairs/`` uses this)."""
    import json

    from repro.core.plugin import Plugin, Pluglet

    spec = json.loads(path.read_text())
    plugins = []
    for pspec in spec["pair"]:
        pluglets = [
            Pluglet.from_source(
                name=ps["name"],
                protoop=ps["protoop"],
                anchor=ps.get("anchor", "replace"),
                source=ps["source"],
                param=ps.get("param"),
                fuel=int(ps.get("fuel", 0)),
                helper_budget=int(ps.get("helper_budget", 0)),
                triggers=tuple(ps.get("triggers", ())),
            )
            for ps in pspec["pluglets"]
        ]
        plugins.append(Plugin(pspec["name"], pluglets))
    return plugins


def _lint_plugin_set_file(path) -> list:
    """Lint a ``.json`` plugin-set file: per-plugin analyzer + manifest
    lint, then the cross-plugin conflict catalog (``PRE200``+)."""
    from repro.core.api import FIELD_NAMES, HELPER_EFFECTS
    from repro.vm.analysis import (
        Diagnostic,
        Severity,
        check_plugin_set,
        lint_plugin,
        summarize_plugin,
    )

    try:
        plugins = _load_plugin_set_file(path)
    except Exception as exc:  # noqa: BLE001 - any load error is a finding
        return [(str(path), Diagnostic(
            "PRE000", Severity.ERROR, f"plugin-set file rejected: {exc}"))]
    found = []
    for plugin in plugins:
        found.extend((f"{path}:{plugin.name}", d)
                     for d in lint_plugin(plugin))
    effects = [summarize_plugin(p, HELPER_EFFECTS) for p in plugins]
    found.extend((str(path), d)
                 for d in check_plugin_set(effects, FIELD_NAMES))
    return found


def _lint_asm_file(path) -> list:
    """Analyze one ``.s`` file (bare bytecode: no manifest checks)."""
    from repro.vm.analysis import Diagnostic, Severity, analyze
    from repro.vm.asm import AssemblyError, assemble

    try:
        program = assemble(path.read_text())
    except (AssemblyError, OSError) as exc:
        return [(str(path),
                 Diagnostic("PRE000", Severity.ERROR,
                            f"assembly failed: {exc}"))]
    return [(str(path), d) for d in analyze(program).diagnostics]


def cmd_lint(args) -> int:
    from pathlib import Path

    from repro.quic import QuicConfiguration
    from repro.quic.connection import QuicConnection

    conn = QuicConnection(QuicConfiguration(is_client=True))
    protoop_names = set(conn.protoops.names)

    found = []  # (target, Diagnostic)
    plugin_objs: list = []
    targets = args.targets or sorted(BUILTIN_PLUGINS)
    for target in targets:
        if target in BUILTIN_PLUGINS:
            found.extend(_lint_builtin(target, conn, protoop_names,
                                       plugin_objs))
            continue
        path = Path(target)
        if path.is_dir():
            files = sorted(path.rglob("*.s")) + sorted(path.rglob("*.json"))
            if not files:
                print(f"{target}: no .s or .json files found",
                      file=sys.stderr)
                return 2
            for f in files:
                if f.suffix == ".json":
                    found.extend(_lint_plugin_set_file(f))
                else:
                    found.extend(_lint_asm_file(f))
        elif path.is_file():
            if path.suffix == ".json":
                found.extend(_lint_plugin_set_file(path))
            else:
                found.extend(_lint_asm_file(path))
        else:
            print(f"unknown plugin or path: {target}", file=sys.stderr)
            return 2

    if args.targets and len(plugin_objs) >= 2:
        # Explicitly linting several plugins at once also checks them
        # *against each other*: a set meant to attach together must stay
        # free of hard conflicts.  (The no-argument form lints each
        # bundled plugin individually — the builtin list contains
        # mutually-exclusive variants, e.g. the three FEC schemes, that
        # all replace the same protoops by design.)
        from repro.core.api import FIELD_NAMES, HELPER_EFFECTS
        from repro.vm.analysis import check_plugin_set, summarize_plugin

        effects = [summarize_plugin(p, HELPER_EFFECTS) for p in plugin_objs]
        found.extend(("cross-plugin", d)
                     for d in check_plugin_set(effects, FIELD_NAMES))

    from repro.vm.analysis import Severity

    errors = warnings = 0
    for target, diag in found:
        if diag.severity is Severity.ERROR:
            errors += 1
        elif diag.severity is Severity.WARNING:
            warnings += 1
        if diag.severity is Severity.WARNING and args.quiet:
            continue
        print(f"{target}: {diag.format()}")
    print(f"{len(targets)} target(s): {errors} error(s), "
          f"{warnings} warning(s)")
    if errors:
        return 1
    if warnings and args.strict:
        return 1
    return 0


def cmd_conform(args) -> int:
    from pathlib import Path

    from repro import conformance as conf

    if args.list:
        for name in sorted(conf.SUITES):
            scenarios = conf.load_suite(name)
            print(f"{name}: {len(scenarios)} scenario(s): "
                  f"{', '.join(s.name for s in scenarios)}")
        return 0

    try:
        modes = conf.parse_modes(args.modes) if args.modes else conf.ALL_MODES
    except ValueError as exc:
        print(f"conform: {exc}", file=sys.stderr)
        return 2

    if args.repro:
        try:
            scenario, saved_modes = conf.load_repro(args.repro)
        except (OSError, ValueError, KeyError) as exc:
            print(f"conform: cannot load repro {args.repro}: {exc}",
                  file=sys.stderr)
            return 2
        if not args.modes:
            modes = saved_modes
        scenarios = [scenario]
    elif args.cases:
        scenarios = conf.random_scenarios(args.seed, args.cases)
    elif args.suite:
        try:
            scenarios = conf.load_suite(args.suite)
        except ValueError as exc:
            print(f"conform: {exc}", file=sys.stderr)
            return 2
    else:
        print("conform: pick one of --suite, --cases, --repro or --list",
              file=sys.stderr)
        return 2

    failed = 0
    out_dir = Path(args.out)
    for scenario in scenarios:
        verdict = conf.run_conformance(scenario, modes)
        if verdict.passed:
            print(f"ok    {scenario.name}  "
                  f"({verdict.runs} runs across {len(modes)} modes)")
            continue
        failed += 1
        print(f"FAIL  {scenario.name}  "
              f"({len(verdict.failures)} oracle failure(s))")
        for failure in verdict.failures[:args.max_failures]:
            print(f"      {failure.format()}")
        if len(verdict.failures) > args.max_failures:
            print(f"      ... {len(verdict.failures) - args.max_failures} more")
        if args.no_shrink:
            continue
        result = conf.shrink(scenario, conf.FAST_MODES)
        if not result.failures:
            # Failure not reproducible under the cheap two-mode matrix
            # (e.g. batch-only divergence): shrink under the full one.
            result = conf.shrink(scenario, modes)
        minimal = result.minimal
        print(f"      shrunk to {len(minimal.faults)} fault event(s), "
              f"{minimal.workload.size} bytes, plugins "
              f"{list(minimal.plugins)} in {result.evaluations} runs")
        path = out_dir / f"{scenario.name}.repro.json"
        conf.save_repro(path, minimal, modes, result.failures or
                        verdict.failures,
                        note=f"shrunk from scenario {scenario.name!r}")
        print(f"      repro written to {path}")

    total = len(scenarios)
    print(f"{total - failed}/{total} scenario(s) pass "
          f"({len(modes)}-mode matrix)")
    return 1 if failed else 0


def cmd_trace(args) -> int:
    from repro.core import PluginInstance
    from repro.netsim import Simulator, symmetric_topology
    from repro.quic import ClientEndpoint, ServerEndpoint
    from repro.trace import ConnectionTracer, JsonlTraceWriter, PreProfiler

    sim = Simulator()
    topo = symmetric_topology(sim, d_ms=args.delay, bw_mbps=args.bandwidth,
                              loss_pct=args.loss, seed=args.seed)
    server = ServerEndpoint(sim, topo.server, "server.0", 443)
    client = ClientEndpoint(sim, topo.client, "client.0", 5000, "server.0", 443)
    if args.plugins:
        PreProfiler().attach(client.conn)  # profile rows join the trace
    writer = JsonlTraceWriter(args.jsonl) if args.jsonl else None
    tracer = ConnectionTracer(client.conn, max_events=args.max_events,
                              writer=writer, validate=args.validate)
    for name in args.plugins:
        PluginInstance(BUILTIN_PLUGINS[name](), client.conn).attach()
    done = [False]
    server.on_connection = lambda conn: setattr(
        conn, "on_stream_data", lambda sid, d, fin: done.__setitem__(0, fin))
    client.connect()
    sim.run_until(lambda: client.conn.is_established, timeout=5)
    sid = client.conn.create_stream()
    client.conn.send_stream_data(sid, b"t" * args.size, fin=True)
    client.pump()
    sim.run_until(lambda: done[0], timeout=120)
    tracer.finish()
    if args.jsonl:
        dropped = f" ({tracer.dropped} dropped)" if tracer.dropped else ""
        print(f"wrote {len(tracer.events)} events to {args.jsonl}{dropped}")
    else:
        print(tracer.to_json())
    return 0


def cmd_profile(args) -> int:
    from repro.experiments import run_quic_transfer

    builders = [BUILTIN_PLUGINS[p] for p in args.plugins]
    result = run_quic_transfer(
        args.size, d_ms=args.delay, bw_mbps=args.bandwidth,
        loss_pct=args.loss, seed=args.seed,
        client_plugins=builders, server_plugins=builders,
        multipath="multipath" in args.plugins,
        profile=True,
    )
    if not result.completed:
        print("transfer did not complete", file=sys.stderr)
        return 1
    print(f"transferred {args.size} bytes in {result.dct:.3f}s with "
          f"plugins: {', '.join(args.plugins) or '(none)'}")
    print()
    print(result.profile.format_table(max_rows=args.top))
    runs = result.profile.protoop_runs()
    if runs:
        total = sum(runs.values())
        print(f"\nhost protoop dispatches: {total} across "
              f"{len(runs)} operations (top 5:")
        for name, count in sorted(runs.items(), key=lambda kv: -kv[1])[:5]:
            print(f"  {name:<32} {count}")
        print(")")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="Pluginized QUIC reproduction toolkit")
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("demo", help="run an example scenario")
    p.add_argument("name", nargs="?", default="quickstart",
                   choices=["quickstart", "vpn_tunnel", "multipath_fec",
                            "plugin_exchange", "custom_plugin"])
    p.set_defaults(func=cmd_demo)

    p = sub.add_parser("transfer", help="one PQUIC transfer with plugins")
    p.add_argument("--size", type=int, default=1_000_000)
    p.add_argument("--delay", type=float, default=10.0, help="one-way ms")
    p.add_argument("--bandwidth", type=float, default=20.0, help="Mbps")
    p.add_argument("--loss", type=float, default=0.0, help="percent")
    p.add_argument("--seed", type=int, default=1)
    p.add_argument("--plugins", nargs="*", default=[],
                   choices=sorted(BUILTIN_PLUGINS))
    p.set_defaults(func=cmd_transfer)

    p = sub.add_parser("vpn", help="TCP in/out of the PQUIC tunnel")
    p.add_argument("--size", type=int, default=1_000_000)
    p.add_argument("--delay", type=float, default=10.0)
    p.add_argument("--bandwidth", type=float, default=20.0)
    p.add_argument("--seed", type=int, default=1)
    p.add_argument("--multipath", action="store_true")
    p.set_defaults(func=cmd_vpn)

    p = sub.add_parser("protoops", help="list protocol operations")
    p.set_defaults(func=cmd_protoops)

    p = sub.add_parser("inspect", help="analyze a built-in plugin")
    p.add_argument("plugin", choices=sorted(BUILTIN_PLUGINS))
    p.set_defaults(func=cmd_inspect)

    p = sub.add_parser("lint",
                       help="static-analyze plugins or .s bytecode files")
    p.add_argument("targets", nargs="*",
                   help="built-in plugin names, .s files or directories "
                        "(default: every built-in plugin)")
    p.add_argument("--strict", action="store_true",
                   help="treat warnings as errors")
    p.add_argument("--quiet", action="store_true",
                   help="print errors only")
    p.set_defaults(func=cmd_lint)

    p = sub.add_parser(
        "conform",
        help="cross-mode differential conformance sweeps")
    p.add_argument("--suite", metavar="NAME",
                   help="run a named suite (see --list)")
    p.add_argument("--cases", type=int, metavar="N",
                   help="run N seeded random scenarios instead of a suite")
    p.add_argument("--seed", type=int, default=1,
                   help="seed for --cases sweeps")
    p.add_argument("--repro", metavar="PATH",
                   help="replay a saved repro file")
    p.add_argument("--modes", metavar="LIST",
                   help="comma-separated mode names like J1-B1-A1 "
                        "(default: the full kill-switch cross-product)")
    p.add_argument("--no-shrink", action="store_true",
                   help="report failures without delta-debugging them")
    p.add_argument("--out", default="conformance-repros",
                   help="directory for shrunken repro files")
    p.add_argument("--max-failures", type=int, default=5,
                   help="oracle failures printed per scenario")
    p.add_argument("--list", action="store_true",
                   help="list the available suites")
    p.set_defaults(func=cmd_conform)

    p = sub.add_parser("trace", help="qlog-style trace of a transfer")
    p.add_argument("--size", type=int, default=50_000)
    p.add_argument("--delay", type=float, default=10.0)
    p.add_argument("--bandwidth", type=float, default=20.0)
    p.add_argument("--loss", type=float, default=0.0)
    p.add_argument("--seed", type=int, default=1)
    p.add_argument("--plugins", nargs="*", default=[],
                   choices=sorted(BUILTIN_PLUGINS))
    p.add_argument("--jsonl", metavar="PATH",
                   help="stream events to PATH as JSONL instead of "
                        "printing a qlog document")
    p.add_argument("--validate", action="store_true",
                   help="schema-validate every event as it is recorded")
    p.add_argument("--max-events", type=int, default=100_000)
    p.set_defaults(func=cmd_trace)

    p = sub.add_parser("profile",
                       help="per-pluglet PRE cost attribution for a transfer")
    p.add_argument("--size", type=int, default=200_000)
    p.add_argument("--delay", type=float, default=10.0)
    p.add_argument("--bandwidth", type=float, default=20.0)
    p.add_argument("--loss", type=float, default=0.0)
    p.add_argument("--seed", type=int, default=1)
    p.add_argument("--plugins", nargs="*",
                   default=["monitoring", "fec-xor"],
                   choices=sorted(BUILTIN_PLUGINS))
    p.add_argument("--top", type=int, default=None,
                   help="show only the N costliest rows")
    p.set_defaults(func=cmd_profile)
    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return args.func(args)
    except BrokenPipeError:
        # Output piped into a pager/head that closed early: not an error.
        import os

        try:
            sys.stdout.close()
        except Exception:
            os._exit(0)
        return 0


if __name__ == "__main__":
    raise SystemExit(main())
