"""Deprecated import shim for the §2.1 verifier.

The verification gate moved into the static-analysis package:
:mod:`repro.vm.analysis.verify` (re-exported from
:mod:`repro.vm.analysis`).  This module keeps the historical import
path working, mirroring the :mod:`repro.quic.qlog` shim precedent.
"""

from __future__ import annotations

import warnings

from .analysis.verify import (  # noqa: F401
    VerificationError,
    verify,
    verify_bytecode,
)

warnings.warn(
    "repro.vm.verifier is deprecated; import verify/VerificationError "
    "from repro.vm.analysis instead",
    DeprecationWarning,
    stacklevel=2,
)

__all__ = ["VerificationError", "verify", "verify_bytecode"]
