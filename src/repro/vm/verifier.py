"""Static bytecode verification (§2.1).

Before a pluglet is accepted, the PRE "checks simple properties of the
bytecode to ensure its (apparent) validity":

(i)   the bytecode contains an exit instruction;
(ii)  all instructions are valid (known opcodes and values);
(iii) no trivially wrong operations (e.g. dividing by zero);
(iv)  all jumps are valid;
(v)   the bytecode never writes to read-only registers;
plus static validation of stack accesses.

"A plugin is rejected if any of the above checks fails for one of its
pluglets."  This verifier is deliberately *relaxed* compared to the kernel
eBPF verifier (no complexity bound, loops allowed) — the runtime monitor
(:mod:`repro.vm.interpreter`) covers the rest.
"""

from __future__ import annotations

import struct
from typing import Iterable, Optional

from .isa import (
    ALU_IMM_OPS,
    ALU_REG_OPS,
    DST_WRITE_OPS,
    FP_REGISTER,
    JMP_IMM_OPS,
    JMP_REG_OPS,
    JUMP_OPS,
    LOAD_OPS,
    MEM_OPS,
    MEM_SIZES,
    NUM_REGISTERS,
    STACK_SIZE,
    STORE_IMM_OPS,
    STORE_REG_OPS,
    Instruction,
    Op,
)


class VerificationError(Exception):
    """The bytecode failed static verification; the plugin is rejected."""

    def __init__(self, reason: str, pc: Optional[int] = None):
        where = f" at instruction {pc}" if pc is not None else ""
        super().__init__(f"{reason}{where}")
        self.reason = reason
        self.pc = pc


def verify(program: Iterable[Instruction], max_instructions: int = 65_536) -> None:
    """Run all static checks; raises :class:`VerificationError` on failure."""
    instructions = list(program)
    if not instructions:
        raise VerificationError("empty program")
    if len(instructions) > max_instructions:
        raise VerificationError(
            f"program too large ({len(instructions)} > {max_instructions})"
        )

    # (i) an exit instruction must be present.
    if not any(ins.opcode is Op.EXIT for ins in instructions):
        raise VerificationError("program has no exit instruction")

    n = len(instructions)
    for pc, ins in enumerate(instructions):
        _check_instruction(ins, pc, n)

    _check_stack_accesses(instructions)


def _check_instruction(ins: Instruction, pc: int, n: int) -> None:
    # (ii) valid opcode and register numbers.
    if not isinstance(ins.opcode, Op):
        try:
            Op(ins.opcode)
        except ValueError:
            raise VerificationError(f"unknown opcode {ins.opcode!r}", pc)
    if not 0 <= ins.dst < NUM_REGISTERS:
        raise VerificationError(f"invalid dst register r{ins.dst}", pc)
    if not 0 <= ins.src < NUM_REGISTERS:
        raise VerificationError(f"invalid src register r{ins.src}", pc)

    op = ins.opcode
    # (iii) trivially wrong operations.
    if op in (Op.DIV_IMM, Op.MOD_IMM) and ins.imm == 0:
        raise VerificationError("division by zero immediate", pc)
    if op in (Op.LSH_IMM, Op.RSH_IMM, Op.ARSH_IMM) and not 0 <= ins.imm < 64:
        raise VerificationError(f"shift amount {ins.imm} out of range", pc)

    # (iv) all jumps land inside the program.
    if op in JUMP_OPS:
        target = pc + 1 + ins.offset
        if not 0 <= target < n:
            raise VerificationError(f"jump target {target} out of range", pc)

    # (v) never write to read-only registers.
    if op in DST_WRITE_OPS and ins.dst == FP_REGISTER:
        raise VerificationError("write to read-only register r10", pc)
    if op is Op.CALL and ins.imm < 0:
        raise VerificationError(f"invalid helper id {ins.imm}", pc)


def _check_stack_accesses(instructions: list) -> None:
    """Static stack-bounds validation (§2.1): every memory access whose
    base register is provably the frame pointer must stay within the
    pluglet's 512-byte stack."""
    for pc, ins in enumerate(instructions):
        if ins.opcode not in MEM_OPS:
            continue
        size = MEM_SIZES[ins.opcode]
        base = ins.src if ins.opcode in LOAD_OPS else ins.dst
        if base != FP_REGISTER:
            continue  # dynamically monitored instead
        low = ins.offset
        high = ins.offset + size
        if not (-STACK_SIZE <= low and high <= 0):
            raise VerificationError(
                f"stack access [{low}, {high}) outside [-{STACK_SIZE}, 0)", pc
            )


def verify_bytecode(bytecode: bytes) -> list:
    """Decode then verify; returns the instruction list."""
    from .isa import decode_program

    try:
        instructions = decode_program(bytecode)
    except (ValueError, struct.error) as exc:
        raise VerificationError(f"malformed bytecode: {exc}")
    verify(instructions)
    return instructions
