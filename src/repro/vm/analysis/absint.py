"""Worklist abstract interpretation over the PRE control-flow graph.

The analysis joins, per basic block, an :class:`AbsState` tracking

* one value interval per register (:mod:`.domain`);
* which registers have definitely been written (for the
  uninitialized-read lint — the interpreter zero-fills registers, so
  this is a code-smell rule, not a soundness one);
* which stack bytes have definitely been written, and the abstract
  values of frame-pointer-relative 8-byte slots (the compiler's spill
  slots), so address arithmetic routed through the stack stays precise.

States propagate along CFG edges until a fixpoint; blocks visited more
than :data:`WIDEN_AFTER` times are widened so loops converge.  A final
pass over the stable entry states collects per-instruction results
(:class:`PcResult`): proven memory regions for the JIT, definite
out-of-bounds / division-by-zero faults, and initialization reads.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from ..interpreter import HEAP_BASE, STACK_BASE
from ..isa import (
    ALU_IMM_OPS,
    ALU_REG_OPS,
    FP_REGISTER,
    JMP_IMM_OPS,
    JMP_REG_OPS,
    LOAD_OPS,
    MEM_SIZES,
    NUM_REGISTERS,
    STACK_SIZE,
    STORE_IMM_OPS,
    STORE_REG_OPS,
    Instruction,
    Op,
)
from . import domain
from .cfg import ControlFlowGraph
from .domain import TOP, Interval

_STACK_TOP = STACK_BASE + STACK_SIZE
#: Joins at one block before widening kicks in.
WIDEN_AFTER = 8

#: Registers holding definite values at entry: arguments r1-r5 and the
#: frame pointer.  r0/r6-r9 are zero-filled but never *assigned*.
_ENTRY_WRITTEN = sum(1 << r for r in range(1, 6)) | (1 << FP_REGISTER)

_ALU_FNS = {
    Op.ADD: domain.add,
    Op.SUB: domain.sub,
    Op.MUL: domain.mul,
    Op.DIV: domain.div,
    Op.MOD: domain.mod,
    Op.AND: domain.and_,
    Op.OR: domain.or_,
    Op.XOR: domain.xor,
    Op.LSH: domain.lsh,
    Op.RSH: domain.rsh,
    Op.ARSH: domain.arsh,
    Op.MOV: domain.mov,
}


class AbsState:
    """Abstract machine state at one program point."""

    __slots__ = ("regs", "written", "stack_init", "slots")

    def __init__(self) -> None:
        regs: List[Interval] = [domain.const(0)] * NUM_REGISTERS
        for r in range(1, 6):
            regs[r] = TOP
        regs[FP_REGISTER] = domain.const(_STACK_TOP)
        self.regs = regs
        self.written = _ENTRY_WRITTEN
        self.stack_init = 0
        #: stack offset (0-based from STACK_BASE) -> dword value interval
        self.slots: Dict[int, Interval] = {}

    def copy(self) -> "AbsState":
        dup = AbsState.__new__(AbsState)
        dup.regs = list(self.regs)
        dup.written = self.written
        dup.stack_init = self.stack_init
        dup.slots = dict(self.slots)
        return dup

    def join_from(self, other: "AbsState", widen: bool) -> bool:
        """Merge ``other`` into self; True when self changed."""
        changed = False
        for i in range(NUM_REGISTERS):
            merged = domain.join(self.regs[i], other.regs[i])
            if widen:
                merged = domain.widen(self.regs[i], merged)
            if merged != self.regs[i]:
                self.regs[i] = merged
                changed = True
        written = self.written & other.written
        if written != self.written:
            self.written = written
            changed = True
        init = self.stack_init & other.stack_init
        if init != self.stack_init:
            self.stack_init = init
            changed = True
        for off in list(self.slots):
            theirs = other.slots.get(off)
            if theirs is None:
                del self.slots[off]
                changed = True
                continue
            merged = domain.join(self.slots[off], theirs)
            if widen:
                merged = domain.widen(self.slots[off], merged)
            if merged != self.slots[off]:
                if merged == TOP:
                    del self.slots[off]
                else:
                    self.slots[off] = merged
                changed = True
        return changed


class PcResult:
    """What the final pass learned about one instruction."""

    __slots__ = ("region", "definite_oob", "uninit_regs", "uninit_stack",
                 "definite_div_zero")

    def __init__(self) -> None:
        self.region: Optional[str] = None  # "stack" | "heap" when proven
        self.definite_oob = False
        self.uninit_regs: Set[int] = set()
        self.uninit_stack = False
        self.definite_div_zero = False


class CallSite:
    """One ``CALL`` instruction with the argument intervals that reach it.

    The helper ABI passes arguments in r1-r5; the intervals are the
    stable fixpoint values at the call, so a constant interval in
    ``args[0]`` (r1) statically identifies e.g. the field id a
    ``plugin_get``/``plugin_set`` helper touches."""

    __slots__ = ("pc", "helper_id", "args")

    def __init__(self, pc: int, helper_id: int,
                 args: Tuple[Interval, ...]) -> None:
        self.pc = pc
        self.helper_id = helper_id
        self.args = args

    def const_arg(self, index: int) -> Optional[int]:
        """The exact value of argument ``index`` (0 = r1) when the
        interval proves it constant, else ``None``."""
        if 0 <= index < len(self.args):
            return domain.is_const(self.args[index])
        return None


class AbstractInterpretation:
    """Run the worklist analysis for one program and collect results."""

    def __init__(self, cfg: ControlFlowGraph, heap_size: int):
        self.cfg = cfg
        self.heap_size = heap_size
        self.entry_states: Dict[int, AbsState] = {}
        self.pc_results: Dict[int, PcResult] = {}
        self.helper_ids: Set[int] = set()
        #: pc -> CallSite, recorded from the stable final pass.
        self.call_sites: Dict[int, CallSite] = {}
        self._run()
        self._collect()

    # --- fixpoint ---------------------------------------------------------

    def _run(self) -> None:
        cfg = self.cfg
        if cfg.entry not in cfg.blocks:
            return
        self.entry_states[cfg.entry] = AbsState()
        visits: Dict[int, int] = {}
        work: List[int] = [cfg.entry]
        queued: Set[int] = {cfg.entry}
        while work:
            start = work.pop(0)
            queued.discard(start)
            visits[start] = visits.get(start, 0) + 1
            state = self.entry_states[start].copy()
            block = cfg.blocks[start]
            for pc in range(block.start, block.end):
                self._transfer(cfg.instructions[pc], pc, state, None)
            for succ in block.successors:
                existing = self.entry_states.get(succ)
                if existing is None:
                    self.entry_states[succ] = state.copy()
                    changed = True
                else:
                    widen = visits.get(succ, 0) >= WIDEN_AFTER
                    changed = existing.join_from(state, widen)
                if changed and succ not in queued:
                    work.append(succ)
                    queued.add(succ)

    def block_exit_state(self, start: int) -> Optional[AbsState]:
        """The abstract state at the *exit* of one block, re-derived from
        its stable entry state (``None`` for unreachable blocks)."""
        entry = self.entry_states.get(start)
        if entry is None:
            return None
        state = entry.copy()
        block = self.cfg.blocks[start]
        for pc in range(block.start, block.end):
            self._transfer(self.cfg.instructions[pc], pc, state, None)
        return state

    def _collect(self) -> None:
        for start in sorted(self.entry_states):
            state = self.entry_states[start].copy()
            block = self.cfg.blocks[start]
            for pc in range(block.start, block.end):
                result = PcResult()
                self.pc_results[pc] = result
                self._transfer(self.cfg.instructions[pc], pc, state, result)

    # --- transfer function -------------------------------------------------

    def _transfer(self, ins: Instruction, pc: int, st: AbsState,
                  res: Optional[PcResult]) -> None:
        op = ins.opcode

        if op in ALU_REG_OPS:
            self._read(ins.src, st, res)
            if op is not Op.MOV:
                self._read(ins.dst, st, res)
            if op in (Op.DIV, Op.MOD) and res is not None:
                if st.regs[ins.src] == (0, 0):
                    res.definite_div_zero = True
            self._write(ins.dst, self._alu(op, st.regs[ins.dst],
                                           st.regs[ins.src]), st)
            return
        if op in ALU_IMM_OPS:
            base = Op(op - 0x10)
            if base is not Op.MOV:
                self._read(ins.dst, st, res)
            self._write(ins.dst, self._alu(base, st.regs[ins.dst],
                                           domain.const(ins.imm)), st)
            return
        if op is Op.NEG:
            self._read(ins.dst, st, res)
            self._write(ins.dst, domain.neg(st.regs[ins.dst]), st)
            return
        if op is Op.LDDW:
            self._write(ins.dst, domain.const(ins.imm), st)
            return
        if op in JMP_REG_OPS:
            self._read(ins.dst, st, res)
            self._read(ins.src, st, res)
            return
        if op in JMP_IMM_OPS:
            self._read(ins.dst, st, res)
            return
        if op in LOAD_OPS:
            self._read(ins.src, st, res)
            value = self._memory(ins, pc, st, res, store=False)
            self._write(ins.dst, value, st)
            return
        if op in STORE_REG_OPS:
            self._read(ins.dst, st, res)
            self._read(ins.src, st, res)
            self._memory(ins, pc, st, res, store=True)
            return
        if op in STORE_IMM_OPS:
            self._read(ins.dst, st, res)
            self._memory(ins, pc, st, res, store=True)
            return
        if op is Op.CALL:
            # Helpers receive r1-r5 and write only r0; they may also
            # write the running stack through vm.current_stack, so spill
            # slot values become unknown (their init-ness is preserved:
            # writes never un-initialize).
            self.helper_ids.add(ins.imm)
            if res is not None:
                self.call_sites[pc] = CallSite(
                    pc, ins.imm, tuple(st.regs[1:6]))
            self._write(0, TOP, st)
            st.slots.clear()
            return
        # JA / EXIT: no register or memory effect.

    @staticmethod
    def _alu(base: Op, dst: Interval, src: Interval) -> Interval:
        if base in (Op.ADD, Op.SUB):
            c = domain.is_const(src)
            if c is not None:
                return domain.add_const(dst, c if base is Op.ADD else -c)
        fn = _ALU_FNS[base]
        return fn(dst, src)

    def _read(self, reg: int, st: AbsState, res: Optional[PcResult]) -> None:
        if res is not None and not (st.written >> reg) & 1:
            res.uninit_regs.add(reg)

    @staticmethod
    def _write(reg: int, value: Interval, st: AbsState) -> None:
        st.regs[reg] = value
        st.written |= 1 << reg

    # --- memory ------------------------------------------------------------

    def _memory(self, ins: Instruction, pc: int, st: AbsState,
                res: Optional[PcResult], store: bool) -> Interval:
        """Model one load/store; returns the loaded value interval."""
        size = MEM_SIZES[ins.opcode]
        base_reg = ins.src if ins.opcode in LOAD_OPS else ins.dst
        addr = domain.add_const(st.regs[base_reg], ins.offset)
        stack_win = (STACK_BASE, STACK_BASE + STACK_SIZE - size)
        heap_win = (HEAP_BASE, HEAP_BASE + self.heap_size - size)

        in_stack = stack_win[0] <= addr[0] and addr[1] <= stack_win[1]
        in_heap = heap_win[0] <= addr[0] and addr[1] <= heap_win[1]
        touches_stack = addr[0] <= stack_win[1] and addr[1] >= stack_win[0]
        touches_heap = addr[0] <= heap_win[1] and addr[1] >= heap_win[0]

        if res is not None:
            if in_stack:
                res.region = "stack"
            elif in_heap:
                res.region = "heap"
            elif not touches_stack and not touches_heap:
                res.definite_oob = True

        loaded: Interval = TOP
        if size < 8:
            loaded = (0, (1 << (8 * size)) - 1)

        if in_stack:
            off = domain.is_const(addr)
            if off is not None:
                off -= STACK_BASE
                mask = ((1 << size) - 1) << off
                if store:
                    st.stack_init |= mask
                    if ins.opcode in STORE_REG_OPS and size == 8:
                        st.slots[off] = st.regs[ins.src]
                    elif ins.opcode in STORE_IMM_OPS and size == 8:
                        st.slots[off] = domain.const(ins.imm)
                    else:  # narrow store clobbers any overlapping slot
                        self._clobber_slots(st, off, size)
                else:
                    if res is not None and (st.stack_init & mask) != mask:
                        res.uninit_stack = True
                    if size == 8 and off in st.slots:
                        loaded = st.slots[off]
                return loaded
            if store:  # somewhere in the stack, unknown where
                st.slots.clear()
            return loaded

        if store and not in_heap and touches_stack:
            # May or may not hit the stack: spill slots become unknown.
            st.slots.clear()
        return loaded

    @staticmethod
    def _clobber_slots(st: AbsState, off: int, size: int) -> None:
        for slot in list(st.slots):
            if slot < off + size and off < slot + 8:
                del st.slots[slot]


def interpret(cfg: ControlFlowGraph,
              heap_size: int) -> AbstractInterpretation:
    """Run the abstract interpretation; never raises for structurally
    valid programs (the rule layer gates on that)."""
    return AbstractInterpretation(cfg, heap_size)
