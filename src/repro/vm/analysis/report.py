"""Structured results of the PRE static analyzer.

An :class:`AnalysisReport` carries two kinds of information:

* **diagnostics** — rule violations (:class:`Diagnostic`) with a stable
  rule id, a severity and, where meaningful, the program counter of the
  offending instruction;
* **facts** — proofs about the whole program ("all memory accesses stay
  in bounds", "loop-free", "worst-case fuel ≤ N") plus per-instruction
  memory-region facts that let the JIT drop its inlined monitor
  (:mod:`repro.vm.jit`).

The report is pure data: producing it never raises, so callers decide
their own policy (reject, warn, lint, specialize).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple


class Severity(enum.Enum):
    """How bad a diagnostic is.

    ``ERROR`` means the program certainly misbehaves (or violates the
    paper's §2.1 acceptance checks); ``WARNING`` flags suspect but not
    certainly-wrong code; ``INFO`` is advisory.
    """

    ERROR = "error"
    WARNING = "warning"
    INFO = "info"

    def __str__(self) -> str:
        return self.value


@dataclass(frozen=True)
class Diagnostic:
    """One rule violation found by the analyzer."""

    rule: str  # stable rule id, e.g. "PRE104"
    severity: Severity
    message: str  # reason without location suffix
    pc: Optional[int] = None  # offending instruction, if localizable
    pluglet: str = ""  # filled in by plugin-level lint

    def format(self) -> str:
        where = f" at instruction {self.pc}" if self.pc is not None else ""
        who = f"{self.pluglet}: " if self.pluglet else ""
        return f"{who}{self.severity}[{self.rule}]: {self.message}{where}"

    def __str__(self) -> str:
        return self.format()


#: Per-instruction memory proof: the access at this pc always lands in
#: this region ("stack" or "heap"), so no runtime bounds check is needed.
MemFacts = Dict[int, str]


@dataclass(frozen=True)
class LoopBound:
    """Proven iteration bound for one natural loop."""

    head: int  # pc of the loop-head block
    trips: int  # worst-case iterations per invocation
    ranking: str  # human-readable ranking-function description


@dataclass(frozen=True)
class FuelCertificate:
    """Static proof of a worst-case fuel bound for a *loopy* program.

    Loop-free programs get their bound from the CFG's longest path; this
    certificate extends the proof to programs with loops by combining
    the termination checker's ranking functions with the interval
    analysis: each loop's trip count is bounded, so total fuel is the
    acyclic longest path plus every loop's trips x worst-case lap cost.
    When the bound fits the runtime budget the JIT can elide batched
    fuel checks entirely — the certificate changes performance, never
    semantics."""

    fuel_bound: int
    helper_bound: int
    loops: Tuple[LoopBound, ...] = ()

    def describe(self) -> str:
        laps = ", ".join(f"loop@{lb.head}<={lb.trips} ({lb.ranking})"
                         for lb in self.loops)
        return (f"fuel<={self.fuel_bound} helpers<={self.helper_bound}"
                f" [{laps}]")


@dataclass
class AnalysisReport:
    """Everything the analyzer learned about one program."""

    instruction_count: int = 0
    diagnostics: List[Diagnostic] = field(default_factory=list)
    #: Heap size (bytes) the memory proofs were computed against; a proof
    #: is valid for any plugin memory at least this large.
    heap_size: int = 0
    #: True when every reachable memory access is proven in-bounds.
    memory_safe: bool = False
    #: True when the CFG has no cycle among reachable blocks.
    loop_free: bool = False
    #: Worst-case instructions per invocation (from the loop-free DAG
    #: bound, or from a loop certificate when one was proven).
    fuel_bound: Optional[int] = None
    #: Worst-case helper calls per invocation (same provenance).
    helper_bound: Optional[int] = None
    #: Loop-trip-count proof backing the bounds of a loopy program.
    fuel_certificate: Optional[FuelCertificate] = None
    #: pc -> "stack" | "heap" for individually proven memory accesses.
    mem_facts: MemFacts = field(default_factory=dict)
    #: Helper ids the program may call.
    helper_ids: Tuple[int, ...] = ()
    #: pcs of reachable instructions (empty when the CFG was not built).
    reachable: Tuple[int, ...] = ()

    @property
    def ok(self) -> bool:
        """No error-severity diagnostics."""
        return not any(d.severity is Severity.ERROR for d in self.diagnostics)

    def errors(self) -> List[Diagnostic]:
        return [d for d in self.diagnostics if d.severity is Severity.ERROR]

    def warnings(self) -> List[Diagnostic]:
        return [d for d in self.diagnostics if d.severity is Severity.WARNING]

    def by_rule(self, rule: str) -> List[Diagnostic]:
        return [d for d in self.diagnostics if d.rule == rule]

    def add(self, rule: str, severity: Severity, message: str,
            pc: Optional[int] = None) -> None:
        self.diagnostics.append(Diagnostic(rule, severity, message, pc))

    def summary(self) -> Dict[str, object]:
        """Compact dict for events / CLI output."""
        return {
            "instructions": self.instruction_count,
            "errors": len(self.errors()),
            "warnings": len(self.warnings()),
            "memory_safe": self.memory_safe,
            "loop_free": self.loop_free,
            "fuel_bound": self.fuel_bound,
            "helper_bound": self.helper_bound,
            "fuel_certified": self.fuel_certificate is not None,
            "proven_accesses": len(self.mem_facts),
        }
