"""Static bytecode verification (§2.1) — the acceptance gate.

Before a pluglet is accepted, the PRE "checks simple properties of the
bytecode to ensure its (apparent) validity":

(i)   the bytecode contains an exit instruction;
(ii)  all instructions are valid (known opcodes and values);
(iii) no trivially wrong operations (e.g. dividing by zero);
(iv)  all jumps are valid;
(v)   the bytecode never writes to read-only registers;
plus static validation of stack accesses.

These checks live in the rule catalog (rules ``PRE001``–``PRE012``);
``verify()`` is the §2.1 acceptance gate and raises on the first
legacy-rule violation exactly as the old single-pass verifier did.  It
runs the analyzer in its shallow mode: the deeper rules (reachability,
abstract interpretation) stay deliberately *relaxed* here — loops are
allowed, unproven memory accesses are deferred to the runtime monitor —
matching the paper's acceptance policy.  Oversized programs are
rejected without materializing the whole input.

(Until this package absorbed it, the gate lived in
:mod:`repro.vm.verifier`; that module remains as a deprecated shim.)
"""

from __future__ import annotations

import struct
from typing import Iterable, List, Optional

from ..isa import Instruction
from .rules import DEFAULT_MAX_INSTRUCTIONS, LEGACY_RULES, analyze


class VerificationError(Exception):
    """The bytecode failed static verification; the plugin is rejected."""

    def __init__(self, reason: str, pc: Optional[int] = None):
        where = f" at instruction {pc}" if pc is not None else ""
        super().__init__(f"{reason}{where}")
        self.reason = reason
        self.pc = pc


def verify(program: Iterable[Instruction],
           max_instructions: int = DEFAULT_MAX_INSTRUCTIONS) -> None:
    """Run the §2.1 static checks; raises :class:`VerificationError` on
    the first failure."""
    report = analyze(program, max_instructions=max_instructions, deep=False)
    for diag in report.diagnostics:
        if diag.rule in LEGACY_RULES:
            raise VerificationError(diag.message, diag.pc)


def verify_bytecode(bytecode: bytes) -> List[Instruction]:
    """Decode then verify; returns the instruction list."""
    from ..isa import decode_program

    try:
        instructions = decode_program(bytecode)
    except (ValueError, struct.error) as exc:
        raise VerificationError(f"malformed bytecode: {exc}")
    verify(instructions)
    return instructions
