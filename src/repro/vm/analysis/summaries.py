"""Per-pluglet effect summaries inferred from the interval analysis.

The abstract interpreter records, at every ``CALL`` site, the interval
of each argument register (:class:`~.absint.CallSite`).  The helper ABI
passes the field id of ``plugin_get``/``plugin_set`` in r1, so a
constant r1 interval statically identifies *which* connection or
transient field the call touches.  Combined with the declarative
:class:`HelperEffect` metadata the host annotates its helper table with
(:data:`repro.core.api.HELPER_EFFECTS`), this yields a per-pluglet
summary of

* which fields the pluglet may read and which it may write;
* which helpers it calls;
* which protoops it can transitively trigger (``plugin_run_protoop``
  targets are runtime-assigned ids, so triggers are declared in the
  plugin manifest; bytecode that reaches a trigger helper *without*
  declaring targets is flagged as a wildcard).

Summaries are the input to the cross-plugin conflict catalog
(:mod:`.conflicts`) and call graph (:mod:`.callgraph`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterable, Mapping, Optional, Tuple, Union

from .absint import interpret
from .cfg import ControlFlowGraph

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..isa import Instruction

#: A pluglet parameter: frame-type ids are ints, named parameters strings.
Param = Optional[Union[int, str]]


@dataclass(frozen=True)
class HelperEffect:
    """Declarative effect metadata for one host helper.

    ``field_arg`` names the argument position (0 = r1) that carries a
    field id when the helper reads (``writes_field`` False) or writes
    (True) host state; ``triggers_protoop`` marks helpers that dispatch
    other protoops (``plugin_run_protoop``)."""

    name: str
    field_arg: Optional[int] = None
    writes_field: bool = False
    triggers_protoop: bool = False


@dataclass(frozen=True)
class EffectSummary:
    """What one pluglet may do to shared host state."""

    pluglet: str
    protoop: str
    anchor: str
    param: Param = None
    fields_read: Tuple[int, ...] = ()
    fields_written: Tuple[int, ...] = ()
    #: a read/write helper was reached with a non-constant field id
    unknown_reads: bool = False
    unknown_writes: bool = False
    helpers: Tuple[int, ...] = ()
    #: protoop names declared in the manifest as potential triggers
    triggers: Tuple[str, ...] = ()
    #: bytecode reaches a trigger helper (plugin_run_protoop)
    calls_run_protoop: bool = False

    def reads_field(self, fid: int) -> bool:
        return self.unknown_reads or fid in self.fields_read

    def writes_field(self, fid: int) -> bool:
        return self.unknown_writes or fid in self.fields_written


@dataclass(frozen=True)
class PluginEffects:
    """Effect summaries for every pluglet of one plugin."""

    plugin: str
    summaries: Tuple[EffectSummary, ...] = field(default=())

    def writes(self) -> Tuple[int, ...]:
        seen = sorted({fid for s in self.summaries for fid in s.fields_written})
        return tuple(seen)


def summarize_pluglet(name: str,
                      protoop: str,
                      anchor: str,
                      instructions: "Iterable[Instruction]",
                      effects: Mapping[int, HelperEffect],
                      heap_size: int = 16 * 1024,
                      param: Param = None,
                      triggers: Tuple[str, ...] = ()) -> EffectSummary:
    """Infer one pluglet's effect summary from its bytecode.

    ``effects`` is the host's helper-id -> :class:`HelperEffect` table;
    helpers absent from it are assumed effect-free on shared state
    (they may still compute, allocate plugin memory, etc.)."""
    program = list(instructions)
    cfg = ControlFlowGraph(program)
    absint = interpret(cfg, heap_size)

    reads: set = set()
    writes: set = set()
    unknown_reads = False
    unknown_writes = False
    calls_run_protoop = False
    for site in absint.call_sites.values():
        effect = effects.get(site.helper_id)
        if effect is None:
            continue
        if effect.triggers_protoop:
            calls_run_protoop = True
        if effect.field_arg is None:
            continue
        fid = site.const_arg(effect.field_arg)
        if fid is None:
            if effect.writes_field:
                unknown_writes = True
            else:
                unknown_reads = True
        elif effect.writes_field:
            writes.add(fid)
        else:
            reads.add(fid)

    return EffectSummary(
        pluglet=name,
        protoop=protoop,
        anchor=anchor,
        param=param,
        fields_read=tuple(sorted(reads)),
        fields_written=tuple(sorted(writes)),
        unknown_reads=unknown_reads,
        unknown_writes=unknown_writes,
        helpers=tuple(sorted(absint.helper_ids)),
        triggers=tuple(triggers),
        calls_run_protoop=calls_run_protoop,
    )


def summarize_plugin(plugin: object,
                     effects: Mapping[int, HelperEffect]) -> PluginEffects:
    """Summarize every pluglet of a duck-typed plugin (``name``,
    ``memory_size``, ``pluglets`` with ``name``/``protoop``/``anchor``/
    ``instructions`` and optional ``param``/``triggers``)."""
    heap_size = int(getattr(plugin, "memory_size", 16 * 1024))
    summaries = []
    for pluglet in getattr(plugin, "pluglets", []):
        summaries.append(summarize_pluglet(
            name=pluglet.name,
            protoop=pluglet.protoop,
            anchor=pluglet.anchor,
            instructions=pluglet.instructions,
            effects=effects,
            heap_size=heap_size,
            param=getattr(pluglet, "param", None),
            triggers=tuple(getattr(pluglet, "triggers", ()) or ()),
        ))
    return PluginEffects(plugin=str(getattr(plugin, "name", "?")),
                         summaries=tuple(summaries))
