"""Static analysis of PRE bytecode: CFG, abstract interpretation, rules.

The package upgrades the paper's "simple checks" (§2.1) to a real
dataflow analyzer.  :func:`analyze` builds a control-flow graph
(:mod:`.cfg`), runs a worklist abstract interpretation with an unsigned
interval domain (:mod:`.absint` / :mod:`.domain`), evaluates the rule
catalog (:mod:`.rules`) and returns an :class:`AnalysisReport` whose
proofs — ``memory_safe``, ``loop_free``, ``fuel_bound`` and per-access
region facts — let :mod:`repro.vm.jit` drop its inlined runtime monitor.

``REPRO_ANALYSIS=0`` disables attach-time analysis and proof-guided JIT
specialization throughout (mirroring ``REPRO_JIT``); the lint toolchain
(``repro lint``, ``tools/lint_plugins.py``) always analyzes.
"""

from __future__ import annotations

import os

from .absint import AbstractInterpretation, AbsState, interpret
from .cfg import BasicBlock, ControlFlowGraph, build_cfg
from .manifest import analyze_plugin, lint_plugin
from .report import AnalysisReport, Diagnostic, Severity
from .rules import (
    DEFAULT_HEAP_SIZE,
    DEFAULT_MAX_INSTRUCTIONS,
    LEGACY_RULES,
    RULES,
    analyze,
)

__all__ = [
    "AbsState",
    "AbstractInterpretation",
    "AnalysisReport",
    "BasicBlock",
    "ControlFlowGraph",
    "DEFAULT_HEAP_SIZE",
    "DEFAULT_MAX_INSTRUCTIONS",
    "Diagnostic",
    "LEGACY_RULES",
    "RULES",
    "Severity",
    "analysis_enabled_by_env",
    "analyze",
    "analyze_plugin",
    "build_cfg",
    "interpret",
    "lint_plugin",
]


def analysis_enabled_by_env() -> bool:
    """Attach-time analysis and proof-guided JIT specialization are on by
    default; ``REPRO_ANALYSIS=0`` reverts to the pre-analyzer behavior."""
    return os.environ.get("REPRO_ANALYSIS", "1") != "0"
