"""Static analysis of PRE bytecode: CFG, abstract interpretation, rules.

The package upgrades the paper's "simple checks" (§2.1) to a real
dataflow analyzer.  :func:`analyze` builds a control-flow graph
(:mod:`.cfg`), runs a worklist abstract interpretation with an unsigned
interval domain (:mod:`.absint` / :mod:`.domain`), evaluates the rule
catalog (:mod:`.rules`) and returns an :class:`AnalysisReport` whose
proofs — ``memory_safe``, ``loop_free``, ``fuel_bound`` and per-access
region facts — let :mod:`repro.vm.jit` drop its inlined runtime monitor.

``REPRO_ANALYSIS=0`` disables attach-time analysis and proof-guided JIT
specialization throughout (mirroring ``REPRO_JIT``); the lint toolchain
(``repro lint``, ``tools/lint_plugins.py``) always analyzes.
"""

from __future__ import annotations

import os

from .absint import AbstractInterpretation, AbsState, CallSite, interpret
from .callgraph import ProtoopCallGraph, TriggerEdge, build_call_graph
from .cfg import BasicBlock, ControlFlowGraph, build_cfg
from .conflicts import check_conflicts, check_plugin_set
from .fuelbound import certify
from .manifest import analyze_plugin, lint_plugin
from .report import (
    AnalysisReport,
    Diagnostic,
    FuelCertificate,
    LoopBound,
    Severity,
)
from .rules import (
    DEFAULT_HEAP_SIZE,
    DEFAULT_MAX_INSTRUCTIONS,
    LEGACY_RULES,
    RULES,
    analyze,
)
from .summaries import (
    EffectSummary,
    HelperEffect,
    PluginEffects,
    summarize_plugin,
    summarize_pluglet,
)
from .verify import VerificationError, verify, verify_bytecode

__all__ = [
    "AbsState",
    "AbstractInterpretation",
    "AnalysisReport",
    "BasicBlock",
    "CallSite",
    "ControlFlowGraph",
    "DEFAULT_HEAP_SIZE",
    "DEFAULT_MAX_INSTRUCTIONS",
    "Diagnostic",
    "EffectSummary",
    "FuelCertificate",
    "HelperEffect",
    "LEGACY_RULES",
    "LoopBound",
    "PluginEffects",
    "ProtoopCallGraph",
    "RULES",
    "Severity",
    "TriggerEdge",
    "VerificationError",
    "analysis_enabled_by_env",
    "analyze",
    "analyze_plugin",
    "build_call_graph",
    "build_cfg",
    "certify",
    "check_conflicts",
    "check_plugin_set",
    "interpret",
    "lint_plugin",
    "summarize_plugin",
    "summarize_pluglet",
    "verify",
    "verify_bytecode",
]


def analysis_enabled_by_env() -> bool:
    """Attach-time analysis and proof-guided JIT specialization are on by
    default; ``REPRO_ANALYSIS=0`` reverts to the pre-analyzer behavior."""
    return os.environ.get("REPRO_ANALYSIS", "1") != "0"
