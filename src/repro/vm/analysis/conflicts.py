"""Inter-plugin conflict catalog (rules ``PRE200``–``PRE204``).

Each plugin can pass the per-pluglet analyzer in isolation and still
collide with another plugin once both attach to the same connection.
Given effect summaries (:mod:`.summaries`) for a plugin *set*, this
module detects the composition hazards:

========  ========  =====================================================
rule      severity  meaning
========  ========  =====================================================
PRE200    error     two plugins replace the same protoop (same param)
PRE201    warning   two plugins write the same host field
PRE202    warning   attach-order-sensitive read-after-write: same anchor
                    chain, one plugin reads a field another writes
PRE203    error     cross-plugin protoop trigger cycle (mutual recursion)
PRE204    warning   bytecode reaches plugin_run_protoop with no declared
                    triggers (wildcard: call graph unknowable)
========  ========  =====================================================

The entry points mirror attach-time semantics: an *incoming* plugin is
checked against the already-attached set, so every conflict is reported
exactly once, on the plugin that completes it.  ``PRE201``/``PRE202``
are warnings, not errors — e.g. the bundled ``ecn`` and ``ccontrol``
plugins both legitimately write the congestion window; the report makes
the hazard visible without forbidding deliberate composition.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence, Set, Tuple, Union

from .callgraph import ProtoopCallGraph
from .report import Diagnostic, Severity
from .summaries import EffectSummary, PluginEffects

#: Anchors that take over a protoop: a second one is a hard collision.
_REPLACING_ANCHORS = ("replace", "external")


def _field_label(fid: int,
                 field_names: Optional[Mapping[int, str]]) -> str:
    if field_names and fid in field_names:
        return f"{field_names[fid]} (0x{fid:02x})"
    return f"0x{fid:02x}"


def _param_label(param: Union[int, str, None]) -> str:
    if param is None:
        return ""
    if isinstance(param, int):
        return f"[0x{param:02x}]"
    return f"[{param}]"


def check_conflicts(
    attached: Sequence[PluginEffects],
    incoming: PluginEffects,
    field_names: Optional[Mapping[int, str]] = None,
) -> List[Diagnostic]:
    """Conflicts created by attaching ``incoming`` on top of ``attached``.

    Returns plain diagnostics (never raises); an error-severity entry
    means the composition is rejected under attach-time policy."""
    diags: List[Diagnostic] = []

    # PRE204 — wildcard triggers make the rest of the analysis partial;
    # reported for the incoming plugin only, once per pluglet.
    for summary in incoming.summaries:
        if summary.calls_run_protoop and not summary.triggers:
            diags.append(Diagnostic(
                "PRE204", Severity.WARNING,
                f"pluglet calls plugin_run_protoop but declares no "
                f"triggers; its effect on the protoop call graph is "
                f"unknowable (plugin {incoming.plugin})",
                pluglet=summary.pluglet))

    for other in attached:
        diags.extend(_pairwise(other, incoming, field_names))

    # PRE203 — trigger cycles need the whole set; blame the plugin that
    # closes the cycle (the incoming one).
    graph = ProtoopCallGraph(list(attached) + [incoming])
    for cycle in graph.cycles():
        plugins = graph.cycle_plugins(cycle)
        if incoming.plugin not in plugins:
            continue  # pre-existing cycle, reported when it was closed
        chain = " -> ".join(cycle + (cycle[0],))
        diags.append(Diagnostic(
            "PRE203", Severity.ERROR,
            f"protoop trigger cycle {chain} spans plugins "
            f"{', '.join(plugins)}: unbounded mutual recursion"))
    return diags


def _pairwise(a: PluginEffects, b: PluginEffects,
              field_names: Optional[Mapping[int, str]]) -> List[Diagnostic]:
    diags: List[Diagnostic] = []

    # PRE200 — replace-vs-replace on the same (protoop, param).
    replaced: Dict[Tuple[str, Union[int, str, None]], EffectSummary] = {}
    for sa in a.summaries:
        if sa.anchor in _REPLACING_ANCHORS:
            replaced[(sa.protoop, sa.param)] = sa
    for sb in b.summaries:
        if sb.anchor not in _REPLACING_ANCHORS:
            continue
        sa = replaced.get((sb.protoop, sb.param))
        if sa is not None:
            diags.append(Diagnostic(
                "PRE200", Severity.ERROR,
                f"plugins {a.plugin} and {b.plugin} both replace protoop "
                f"{sb.protoop}{_param_label(sb.param)}",
                pluglet=sb.pluglet))

    # PRE201 — both plugins write the same host field (any anchor).
    writes_a: Dict[int, str] = {}
    wildcard_a: Optional[str] = None
    for sa in a.summaries:
        for fid in sa.fields_written:
            writes_a.setdefault(fid, sa.pluglet)
        if sa.unknown_writes and wildcard_a is None:
            wildcard_a = sa.pluglet
    seen_fields: Set[Union[int, str]] = set()
    for sb in b.summaries:
        fields = list(sb.fields_written)
        for fid in fields:
            if fid in writes_a and fid not in seen_fields:
                seen_fields.add(fid)
                diags.append(Diagnostic(
                    "PRE201", Severity.WARNING,
                    f"plugins {a.plugin} and {b.plugin} both write field "
                    f"{_field_label(fid, field_names)}; the composed "
                    f"behavior depends on interleaving",
                    pluglet=sb.pluglet))
        if wildcard_a is not None and (fields or sb.unknown_writes) \
                and "wildcard" not in seen_fields:
            seen_fields.add("wildcard")
            diags.append(Diagnostic(
                "PRE201", Severity.WARNING,
                f"plugin {a.plugin} writes a statically unknown field; "
                f"it may collide with writes of {b.plugin}",
                pluglet=sb.pluglet))

    # PRE202 — same protoop, same anchor position, one reads what the
    # other writes: the outcome depends on attach order.
    for sa in a.summaries:
        if sa.anchor not in ("pre", "post"):
            continue
        for sb in b.summaries:
            if sb.anchor != sa.anchor or sb.protoop != sa.protoop:
                continue
            hazards: List[Tuple[int, str, str]] = []
            for fid in sb.fields_read:
                if sa.writes_field(fid):
                    hazards.append((fid, a.plugin, b.plugin))
            for fid in sb.fields_written:
                if sa.reads_field(fid):
                    hazards.append((fid, b.plugin, a.plugin))
            for fid, writer, reader in hazards:
                diags.append(Diagnostic(
                    "PRE202", Severity.WARNING,
                    f"order-sensitive access to field "
                    f"{_field_label(fid, field_names)} in the "
                    f"{sa.anchor}-chain of {sa.protoop}: {writer} writes "
                    f"what {reader} reads, so behavior depends on attach "
                    f"order",
                    pluglet=sb.pluglet))
    return diags


def check_plugin_set(
    plugin_effects: Sequence[PluginEffects],
    field_names: Optional[Mapping[int, str]] = None,
) -> List[Diagnostic]:
    """Conflicts across a whole plugin set (lint/CI entry point):
    equivalent to attaching the plugins one by one in order."""
    diags: List[Diagnostic] = []
    for i, incoming in enumerate(plugin_effects):
        diags.extend(check_conflicts(plugin_effects[:i], incoming,
                                     field_names))
    return diags
