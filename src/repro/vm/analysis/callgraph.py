"""Cross-plugin protoop call graph and trigger-cycle detection.

Nodes are protoop names; an edge ``P -> Q`` means some pluglet anchored
at ``P`` (replace, pre, post or external) declares it may trigger
protoop ``Q`` (via ``plugin_run_protoop``).  Built from the per-pluglet
effect summaries (:mod:`.summaries`) of every plugin in a candidate
*set*, the graph detects mutual-recursion chains that span plugins —
plugin A's pluglet triggers a protoop replaced by plugin B whose
pluglet triggers back — which no single-plugin analysis can see.

A cycle makes worst-case fuel unbounded at the composition level (each
lap through the cycle burns fresh per-invocation fuel), so attach-time
policy treats it as a hard conflict (rule ``PRE203``)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Set, Tuple

from .summaries import PluginEffects


@dataclass(frozen=True)
class TriggerEdge:
    """One declared trigger: a pluglet anchored at ``source`` may run
    protoop ``target``."""

    source: str
    target: str
    plugin: str
    pluglet: str


class ProtoopCallGraph:
    """Trigger graph over the protoops touched by a set of plugins."""

    def __init__(self, plugin_effects: Iterable[PluginEffects]) -> None:
        self.effects = tuple(plugin_effects)
        edges: List[TriggerEdge] = []
        for plugin in self.effects:
            for summary in plugin.summaries:
                for target in summary.triggers:
                    edges.append(TriggerEdge(
                        source=summary.protoop, target=target,
                        plugin=plugin.plugin, pluglet=summary.pluglet))
        self.edges: Tuple[TriggerEdge, ...] = tuple(edges)
        adjacency: Dict[str, List[str]] = {}
        for edge in edges:
            targets = adjacency.setdefault(edge.source, [])
            if edge.target not in targets:
                targets.append(edge.target)
            adjacency.setdefault(edge.target, [])
        self.adjacency: Dict[str, Tuple[str, ...]] = {
            node: tuple(targets) for node, targets in adjacency.items()}

    def wildcard_pluglets(self) -> List[Tuple[str, str]]:
        """``(plugin, pluglet)`` pairs whose bytecode reaches the
        trigger helper without declaring any targets — their effects on
        the call graph are statically unknown."""
        found = []
        for plugin in self.effects:
            for summary in plugin.summaries:
                if summary.calls_run_protoop and not summary.triggers:
                    found.append((plugin.plugin, summary.pluglet))
        return found

    def cycles(self) -> List[Tuple[str, ...]]:
        """Protoop-name cycles, one per strongly connected component
        (plus self-loops), each rotated to start at its smallest node."""
        index: Dict[str, int] = {}
        lowlink: Dict[str, int] = {}
        on_stack: Set[str] = set()
        stack: List[str] = []
        counter = [0]
        sccs: List[Tuple[str, ...]] = []

        def strongconnect(root: str) -> None:
            work: List[Tuple[str, int]] = [(root, 0)]
            while work:
                node, edge_idx = work.pop()
                if edge_idx == 0:
                    index[node] = lowlink[node] = counter[0]
                    counter[0] += 1
                    stack.append(node)
                    on_stack.add(node)
                targets = self.adjacency.get(node, ())
                advanced = False
                for i in range(edge_idx, len(targets)):
                    succ = targets[i]
                    if succ not in index:
                        work.append((node, i + 1))
                        work.append((succ, 0))
                        advanced = True
                        break
                    if succ in on_stack:
                        lowlink[node] = min(lowlink[node], index[succ])
                if advanced:
                    continue
                if lowlink[node] == index[node]:
                    component = []
                    while True:
                        member = stack.pop()
                        on_stack.discard(member)
                        component.append(member)
                        if member == node:
                            break
                    if len(component) > 1 or node in self.adjacency.get(node, ()):
                        smallest = min(component)
                        at = component.index(smallest)
                        sccs.append(tuple(component[at:] + component[:at]))
                if work:
                    parent = work[-1][0]
                    lowlink[parent] = min(lowlink[parent], lowlink[node])

        for node in sorted(self.adjacency):
            if node not in index:
                strongconnect(node)
        return sorted(sccs)

    def cycle_plugins(self, cycle: Tuple[str, ...]) -> Tuple[str, ...]:
        """The plugins contributing edges inside ``cycle``."""
        members = set(cycle)
        plugins = {edge.plugin for edge in self.edges
                   if edge.source in members and edge.target in members}
        return tuple(sorted(plugins))


def build_call_graph(
        plugin_effects: Iterable[PluginEffects]) -> ProtoopCallGraph:
    """Convenience constructor mirroring :func:`..cfg.build_cfg`."""
    return ProtoopCallGraph(plugin_effects)
