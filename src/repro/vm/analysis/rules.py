"""The analyzer's rule catalog and the :func:`analyze` entry point.

Rules ``PRE001``–``PRE012`` are the legacy §2.1 acceptance checks folded
in from :mod:`repro.vm.verifier` — its ``verify()`` is now a thin
wrapper that raises on the first of these.  Rules ``PRE1xx`` come from
the control-flow graph and the abstract interpretation; they localize
faults that previously only surfaced at run time.

========  ========  =====================================================
rule      severity  meaning
========  ========  =====================================================
PRE000    error     malformed input (undecodable / unassemblable)
PRE001    error     empty program
PRE002    error     program exceeds the instruction limit
PRE003    error     no exit instruction
PRE004    error     unknown opcode
PRE005    error     invalid destination register
PRE006    error     invalid source register
PRE007    error     division by zero immediate
PRE008    error     shift amount out of range
PRE009    error     jump target out of range
PRE010    error     write to the read-only frame pointer r10
PRE011    error     invalid (negative) helper id
PRE012    error     frame-pointer access outside the 512-byte stack
PRE101    warning   unreachable code
PRE102    error     exit instructions exist but none is reachable
PRE103    error     infinite loop: a reachable region cannot terminate
PRE104    error     memory access always outside stack and plugin memory
PRE106    error     read of a register never written on some path
PRE107    warning   load from stack bytes not definitely initialized
PRE108    error     divisor register is provably always zero
PRE109    warning   execution can run past the end of the program
========  ========  =====================================================

(Manifest-level rules ``PRE110``–``PRE113`` live in :mod:`.manifest`;
the inter-plugin conflict rules ``PRE200``–``PRE204`` live in
:mod:`.conflicts`.)
"""

from __future__ import annotations

import itertools
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from ..isa import (
    DST_WRITE_OPS,
    FP_REGISTER,
    JUMP_OPS,
    LOAD_OPS,
    MEM_OPS,
    MEM_SIZES,
    NUM_REGISTERS,
    STACK_SIZE,
    Instruction,
    Op,
)
from .absint import AbstractInterpretation
from .cfg import ControlFlowGraph
from .fuelbound import certify
from .report import AnalysisReport, Severity

#: Default heap size assumed for memory proofs; matches
#: :class:`repro.vm.interpreter.PluginMemory`.  A proof computed for
#: heap size H is valid on any plugin memory of size >= H.
DEFAULT_HEAP_SIZE = 16 * 1024

DEFAULT_MAX_INSTRUCTIONS = 65_536

#: rule id -> (title, severity)
RULES: Dict[str, Tuple[str, Severity]] = {
    "PRE000": ("malformed input", Severity.ERROR),
    "PRE001": ("empty program", Severity.ERROR),
    "PRE002": ("program too large", Severity.ERROR),
    "PRE003": ("missing exit instruction", Severity.ERROR),
    "PRE004": ("unknown opcode", Severity.ERROR),
    "PRE005": ("invalid destination register", Severity.ERROR),
    "PRE006": ("invalid source register", Severity.ERROR),
    "PRE007": ("division by zero immediate", Severity.ERROR),
    "PRE008": ("shift amount out of range", Severity.ERROR),
    "PRE009": ("jump target out of range", Severity.ERROR),
    "PRE010": ("write to read-only register", Severity.ERROR),
    "PRE011": ("invalid helper id", Severity.ERROR),
    "PRE012": ("stack access out of bounds", Severity.ERROR),
    "PRE101": ("unreachable code", Severity.WARNING),
    "PRE102": ("unreachable exit", Severity.ERROR),
    "PRE103": ("infinite loop", Severity.ERROR),
    "PRE104": ("out-of-bounds memory access", Severity.ERROR),
    "PRE106": ("uninitialized register read", Severity.ERROR),
    "PRE107": ("uninitialized stack read", Severity.WARNING),
    "PRE108": ("division by zero register", Severity.ERROR),
    "PRE109": ("execution past end of program", Severity.WARNING),
    "PRE110": ("fuel budget below analyzer bound", Severity.WARNING),
    "PRE111": ("unknown protocol operation", Severity.WARNING),
    "PRE112": ("unknown anchor", Severity.ERROR),
    "PRE113": ("unknown helper id", Severity.WARNING),
    "PRE200": ("cross-plugin replace collision", Severity.ERROR),
    "PRE201": ("cross-plugin write-write hazard", Severity.WARNING),
    "PRE202": ("order-sensitive cross-plugin access", Severity.WARNING),
    "PRE203": ("cross-plugin trigger cycle", Severity.ERROR),
    "PRE204": ("undeclared protoop trigger", Severity.WARNING),
}

#: The §2.1 checks: ``verify()`` raises on the first of these, in the
#: exact order the old single-pass verifier discovered them.
LEGACY_RULES = frozenset(f"PRE{i:03d}" for i in range(1, 13))


def analyze(
    program: Iterable[Instruction],
    heap_size: int = DEFAULT_HEAP_SIZE,
    max_instructions: int = DEFAULT_MAX_INSTRUCTIONS,
    deep: bool = True,
) -> AnalysisReport:
    """Run the full static analysis; returns a report, never raises.

    ``deep=False`` restricts to the legacy rule set (the fast path used
    by the ``verify()`` compatibility wrapper).
    """
    report = AnalysisReport(heap_size=heap_size)
    instructions = _materialize(program, max_instructions, report)
    report.instruction_count = len(instructions)
    if instructions and report.ok:
        _legacy_rules(instructions, report)
    if not deep or not instructions or _structurally_broken(report):
        return report
    if not all(isinstance(ins.opcode, Op) for ins in instructions):
        return report

    cfg = ControlFlowGraph(instructions)
    _cfg_rules(cfg, instructions, report)
    absint = AbstractInterpretation(cfg, heap_size)
    _absint_rules(cfg, absint, instructions, report)
    _facts(cfg, absint, instructions, report)
    return report


# --- materialization (the lazy empty/size fix) -------------------------


def _materialize(program: Iterable[Instruction], max_instructions: int,
                 report: AnalysisReport) -> List[Instruction]:
    """Pull at most ``max_instructions + 1`` items before judging size,
    so an oversized (or unbounded) iterable is rejected without being
    fully materialized."""
    known_len: Optional[int] = None
    if isinstance(program, Sequence):
        known_len = len(program)
    instructions = list(itertools.islice(iter(program), max_instructions + 1))
    if not instructions:
        report.add("PRE001", Severity.ERROR, "empty program")
        return instructions
    if len(instructions) > max_instructions:
        shown = (f"{known_len} > {max_instructions}" if known_len is not None
                 else f"> {max_instructions}")
        report.add("PRE002", Severity.ERROR, f"program too large ({shown})")
        return instructions[:max_instructions]
    return instructions


# --- legacy §2.1 checks -------------------------------------------------


def _legacy_rules(instructions: List[Instruction],
                  report: AnalysisReport) -> None:
    if not any(ins.opcode is Op.EXIT for ins in instructions):
        report.add("PRE003", Severity.ERROR, "program has no exit instruction")

    n = len(instructions)
    for pc, ins in enumerate(instructions):
        op = ins.opcode
        if not isinstance(op, Op):
            try:
                op = Op(op)
            except ValueError:
                report.add("PRE004", Severity.ERROR,
                           f"unknown opcode {ins.opcode!r}", pc)
                continue
        if not 0 <= ins.dst < NUM_REGISTERS:
            report.add("PRE005", Severity.ERROR,
                       f"invalid dst register r{ins.dst}", pc)
        if not 0 <= ins.src < NUM_REGISTERS:
            report.add("PRE006", Severity.ERROR,
                       f"invalid src register r{ins.src}", pc)
        if op in (Op.DIV_IMM, Op.MOD_IMM) and ins.imm == 0:
            report.add("PRE007", Severity.ERROR,
                       "division by zero immediate", pc)
        if op in (Op.LSH_IMM, Op.RSH_IMM, Op.ARSH_IMM) \
                and not 0 <= ins.imm < 64:
            report.add("PRE008", Severity.ERROR,
                       f"shift amount {ins.imm} out of range", pc)
        if op in JUMP_OPS:
            target = pc + 1 + ins.offset
            if not 0 <= target < n:
                report.add("PRE009", Severity.ERROR,
                           f"jump target {target} out of range", pc)
        if op in DST_WRITE_OPS and ins.dst == FP_REGISTER:
            report.add("PRE010", Severity.ERROR,
                       "write to read-only register r10", pc)
        if op is Op.CALL and ins.imm < 0:
            report.add("PRE011", Severity.ERROR,
                       f"invalid helper id {ins.imm}", pc)

    for pc, ins in enumerate(instructions):
        if ins.opcode not in MEM_OPS:
            continue
        size = MEM_SIZES[ins.opcode]
        base = ins.src if ins.opcode in LOAD_OPS else ins.dst
        if base != FP_REGISTER:
            continue
        low = ins.offset
        high = ins.offset + size
        if not (-STACK_SIZE <= low and high <= 0):
            report.add(
                "PRE012", Severity.ERROR,
                f"stack access [{low}, {high}) outside [-{STACK_SIZE}, 0)",
                pc)


def _structurally_broken(report: AnalysisReport) -> bool:
    """Errors after which instruction semantics are undefined, so the
    deep passes would analyze garbage."""
    return any(d.rule in ("PRE002", "PRE004", "PRE005", "PRE006")
               for d in report.diagnostics)


# --- CFG rules ----------------------------------------------------------


def _cfg_rules(cfg: ControlFlowGraph, instructions: List[Instruction],
               report: AnalysisReport) -> None:
    n = len(instructions)
    for start in cfg.unreachable_blocks():
        if _is_compiler_epilogue(cfg, instructions, start):
            continue
        report.add("PRE101", Severity.WARNING,
                   "unreachable code (never executed)", start)

    reachable = cfg.reachable_blocks
    exit_reachable = any(
        instructions[cfg.blocks[b].end - 1].opcode is Op.EXIT
        for b in reachable)
    has_exit = any(ins.opcode is Op.EXIT for ins in instructions)
    if has_exit and not exit_reachable:
        report.add("PRE102", Severity.ERROR,
                   "exit instructions exist but none is reachable "
                   "from the entry", 0)

    can_stop = cfg.can_terminate_from()
    stuck = sorted(b for b in reachable if b not in can_stop)
    if stuck:
        report.add("PRE103", Severity.ERROR,
                   "infinite loop: execution reaching this instruction "
                   "can never terminate", stuck[0])

    for start in sorted(cfg.fall_off & reachable):
        last = instructions[cfg.blocks[start].end - 1]
        if cfg.blocks[start].end == n and last.opcode is not Op.JA \
                and last.opcode is not Op.EXIT:
            report.add("PRE109", Severity.WARNING,
                       "execution can run past the end of the program",
                       cfg.blocks[start].end - 1)


def _is_compiler_epilogue(cfg: ControlFlowGraph,
                          instructions: List[Instruction],
                          start: int) -> bool:
    """The pluglet compiler appends an implicit ``mov r0, 0; exit`` even
    when every source path already returned; do not lint its dead tail."""
    block = cfg.blocks[start]
    if block.end != len(instructions):
        return False
    tail = instructions[block.start:block.end]
    if len(tail) != 2:
        return False
    first, second = tail
    return (first.opcode is Op.MOV_IMM and first.dst == 0
            and first.imm == 0 and second.opcode is Op.EXIT)


# --- abstract-interpretation rules -------------------------------------


def _absint_rules(cfg: ControlFlowGraph, absint: AbstractInterpretation,
                  instructions: List[Instruction],
                  report: AnalysisReport) -> None:
    for pc in sorted(absint.pc_results):
        res = absint.pc_results[pc]
        ins = instructions[pc]
        if res.definite_oob:
            size = MEM_SIZES[ins.opcode]
            report.add("PRE104", Severity.ERROR,
                       f"memory access of {size} bytes always outside "
                       f"pluglet stack and plugin memory", pc)
        for reg in sorted(res.uninit_regs):
            report.add("PRE106", Severity.ERROR,
                       f"read of register r{reg} which is never written "
                       f"on some path", pc)
        if res.uninit_stack:
            report.add("PRE107", Severity.WARNING,
                       "load from stack bytes not definitely "
                       "initialized", pc)
        if res.definite_div_zero:
            report.add("PRE108", Severity.ERROR,
                       "division by zero (divisor register is always "
                       "zero)", pc)


# --- facts --------------------------------------------------------------


def _facts(cfg: ControlFlowGraph, absint: AbstractInterpretation,
           instructions: List[Instruction], report: AnalysisReport) -> None:
    report.loop_free = cfg.loop_free
    report.reachable = tuple(cfg.reachable_pcs())
    report.helper_ids = tuple(sorted(absint.helper_ids))

    mem_facts: Dict[int, str] = {}
    all_proven = True
    for pc in report.reachable:
        if instructions[pc].opcode not in MEM_OPS:
            continue
        res = absint.pc_results.get(pc)
        region = res.region if res is not None else None
        if region is None:
            all_proven = False
        else:
            mem_facts[pc] = region
    report.mem_facts = mem_facts
    report.memory_safe = all_proven

    if cfg.loop_free:
        report.fuel_bound = _longest_path(
            cfg, lambda b: cfg.blocks[b].size)
        report.helper_bound = _longest_path(
            cfg, lambda b: sum(
                1 for pc in range(cfg.blocks[b].start, cfg.blocks[b].end)
                if instructions[pc].opcode is Op.CALL))
    elif report.ok:
        # Loopy programs can still get a static bound when every loop's
        # trip count is certified (termination ranking + intervals).
        certificate = certify(cfg, absint)
        if certificate is not None:
            report.fuel_certificate = certificate
            report.fuel_bound = certificate.fuel_bound
            report.helper_bound = certificate.helper_bound


def _longest_path(cfg: ControlFlowGraph,
                  weight: "Callable[[int], int]") -> int:
    """Worst-case accumulated block weight over the reachable DAG."""
    order = cfg.topo_order()
    bound: Dict[int, int] = {}
    for start in reversed(order):
        succs = [bound[s] for s in cfg.blocks[start].successors if s in bound]
        bound[start] = weight(start) + (max(succs) if succs else 0)
    return bound.get(cfg.entry, 0)
