"""Abstract value domain: unsigned 64-bit intervals.

A value is approximated by an inclusive interval ``(lo, hi)`` with
``0 <= lo <= hi <= 2**64 - 1`` — the set of concrete register values it
may hold.  ``TOP`` is the full range.  Transfer functions are *sound*:
the concrete result of an operation on any members of the input
intervals is always contained in the abstract result; whenever a
modular operation could wrap, the result degrades to ``TOP`` rather
than guessing.

Because the PRE address space places the pluglet stack and the plugin
heap at disjoint constant bases (:mod:`repro.vm.interpreter`), plain
value intervals double as region information: an address interval that
fits entirely inside one region *proves* the access, with no need for a
separate points-to domain.
"""

from __future__ import annotations

from typing import Optional, Tuple

from ..isa import WORD_MASK

Interval = Tuple[int, int]

TOP: Interval = (0, WORD_MASK)
_LIMIT = WORD_MASK


def const(value: int) -> Interval:
    v = value & WORD_MASK
    return (v, v)


def is_const(iv: Interval) -> Optional[int]:
    """The single concrete value, or None."""
    return iv[0] if iv[0] == iv[1] else None


def contains(iv: Interval, value: int) -> bool:
    return iv[0] <= value <= iv[1]


def join(a: Interval, b: Interval) -> Interval:
    """Least upper bound: the convex hull."""
    return (min(a[0], b[0]), max(a[1], b[1]))


def widen(old: Interval, new: Interval) -> Interval:
    """Classic interval widening: unstable bounds jump to the extreme."""
    lo = old[0] if new[0] >= old[0] else 0
    hi = old[1] if new[1] <= old[1] else _LIMIT
    return (lo, hi)


def add(a: Interval, b: Interval) -> Interval:
    hi = a[1] + b[1]
    if hi > _LIMIT:  # may wrap
        return TOP
    return (a[0] + b[0], hi)


def add_const(a: Interval, c: int) -> Interval:
    """Modular addition of a constant — exact unless the interval
    straddles the wrap point."""
    c &= WORD_MASK
    lo, hi = a[0] + c, a[1] + c
    if hi <= _LIMIT:
        return (lo, hi)
    if lo > _LIMIT:
        return (lo - (_LIMIT + 1), hi - (_LIMIT + 1))
    return TOP


def sub(a: Interval, b: Interval) -> Interval:
    if a[0] < b[1]:  # may wrap through zero
        return TOP
    return (a[0] - b[1], a[1] - b[0])


def mul(a: Interval, b: Interval) -> Interval:
    hi = a[1] * b[1]
    if hi > _LIMIT:
        return TOP
    return (a[0] * b[0], hi)


def div(a: Interval, b: Interval) -> Interval:
    """Unsigned floor division; a zero divisor faults at run time, so the
    abstract result only covers non-faulting executions."""
    lo_d = max(b[0], 1)
    hi_d = max(b[1], 1)
    return (a[0] // hi_d, a[1] // lo_d)


def mod(a: Interval, b: Interval) -> Interval:
    hi_d = max(b[1], 1)
    if a[1] < max(b[0], 1):  # x % m == x whenever x < m for all pairs
        return a
    return (0, hi_d - 1)


def and_(a: Interval, b: Interval) -> Interval:
    ca, cb = is_const(a), is_const(b)
    if ca is not None and cb is not None:
        return const(ca & cb)
    return (0, min(a[1], b[1]))


def or_(a: Interval, b: Interval) -> Interval:
    ca, cb = is_const(a), is_const(b)
    if ca is not None and cb is not None:
        return const(ca | cb)
    bits = max(a[1].bit_length(), b[1].bit_length())
    return (max(a[0], b[0]), (1 << bits) - 1 if bits else 0)


def xor(a: Interval, b: Interval) -> Interval:
    ca, cb = is_const(a), is_const(b)
    if ca is not None and cb is not None:
        return const(ca ^ cb)
    bits = max(a[1].bit_length(), b[1].bit_length())
    return (0, (1 << bits) - 1 if bits else 0)


def lsh(a: Interval, b: Interval) -> Interval:
    cb = is_const(b)
    if cb is None:
        return TOP
    k = cb & 63
    if a[1] << k > _LIMIT:
        return TOP
    return (a[0] << k, a[1] << k)


def rsh(a: Interval, b: Interval) -> Interval:
    cb = is_const(b)
    if cb is not None:
        k = cb & 63
        return (a[0] >> k, a[1] >> k)
    return (0, a[1])  # any right shift only shrinks an unsigned value


def arsh(a: Interval, b: Interval) -> Interval:
    if a[1] < 1 << 63:  # non-negative as signed: behaves like rsh
        return rsh(a, b)
    return TOP  # sign extension can produce huge unsigned values


def neg(a: Interval) -> Interval:
    c = is_const(a)
    if c is not None:
        return const(-c)
    return TOP


def mov(_a: Interval, b: Interval) -> Interval:
    return b
