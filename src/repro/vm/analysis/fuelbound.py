"""Static fuel certificates for loopy pluglets.

Loop-free programs get an exact worst-case fuel bound from the CFG's
longest path (:func:`.rules._facts`).  This module extends the proof to
programs *with* loops by combining two existing analyses:

* the termination checker's ranking functions
  (:mod:`repro.termination.checker`) give, per natural loop, a counter
  that every lap moves by a constant delta toward a loop-invariant
  bound tested at the loop head;
* the interval abstract interpretation (:mod:`.absint`) gives the
  counter's and the bound's value ranges at the loop pre-header.

Together they bound the loop's trip count, so total fuel is the acyclic
longest path (back edges removed) plus each loop's trips x worst-case
lap cost.  The resulting :class:`~.report.FuelCertificate` populates
``AnalysisReport.fuel_bound`` / ``helper_bound``, which lets the JIT
(:mod:`repro.vm.jit`) elide its batched fuel checks exactly as it
already does for loop-free pluglets — a performance change only, never
a semantic one (fuel accounting is still updated).

The certifier is deliberately conservative.  It refuses (returns
``None``) whenever soundness would need assumptions the analyses cannot
discharge: nested or overlapping loops, multiple back edges per head,
exit conditions away from the loop head (not tested every lap), signed
comparisons, possible counter wraparound, stack-slot counters in bodies
whose helpers or stores could alias the slot, and trip counts beyond
:data:`MAX_TRIPS` (a budget that large would never fit a manifest
anyway).
"""

from __future__ import annotations

from typing import (
    TYPE_CHECKING,
    Callable,
    Dict,
    FrozenSet,
    List,
    Optional,
    Set,
    Tuple,
)

from ..isa import (
    FP_REGISTER,
    LOAD_OPS,
    MEM_OPS,
    MEM_SIZES,
    STACK_SIZE,
    Op,
)
from . import domain
from .absint import AbsState, AbstractInterpretation
from .cfg import ControlFlowGraph
from .domain import Interval
from .report import FuelCertificate, LoopBound

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.termination.checker import LoopReport

_WORD = (1 << 64) - 1

#: Refuse certificates above this many laps: such a bound could never
#: fit a per-invocation fuel budget, and keeping trip counts small makes
#: the arithmetic trivially overflow-free.
MAX_TRIPS = 1 << 20


def certify(cfg: ControlFlowGraph, absint: AbstractInterpretation,
            ) -> Optional[FuelCertificate]:
    """Prove a worst-case fuel/helper bound for a loopy program, or
    return ``None`` when no sound certificate exists."""
    if cfg.loop_free or not cfg.blocks:
        return None
    back = cfg.back_edges
    heads = [head for _tail, head in back]
    if len(set(heads)) != len(heads):
        return None  # multiple back edges per head: lap delta ambiguous

    bodies: Dict[int, FrozenSet[int]] = {}
    for tail, head in back:
        bodies[head] = cfg.natural_loop(tail, head)
    body_list = list(bodies.values())
    for i, a in enumerate(body_list):
        for b in body_list[i + 1:]:
            if a & b:
                return None  # nested or overlapping loops

    # Imported lazily: repro.termination re-exports this package's CFG,
    # so a module-level import would cycle during package init.
    from repro.termination.checker import check_termination, cycle_paths

    term = check_termination(cfg.instructions)
    if not term.proven:
        return None
    by_head: Dict[int, "LoopReport"] = {rep.head: rep for rep in term.loops}

    fuel = _dag_longest(cfg, set(back), lambda b: cfg.blocks[b].size)
    helpers = _dag_longest(cfg, set(back), lambda b: _call_count(cfg, b))

    loop_bounds: List[LoopBound] = []
    for head, body in sorted(bodies.items()):
        rep = by_head.get(head)
        if rep is None or not rep.proven or rep.cond_block != head:
            return None
        if rep.counter is None or rep.bound is None or rep.delta is None \
                or rep.stay_op is None:
            return None
        if not _counter_safe(cfg, absint, body, rep.counter):
            return None
        pre = _preheader_state(cfg, absint, head, body)
        if pre is None:
            return None
        counter_iv = _sym_interval(rep.counter, pre)
        bound_iv = _sym_interval(rep.bound, pre)
        if counter_iv is None or bound_iv is None:
            return None
        trips = _trip_bound(rep.stay_op, counter_iv, rep.delta, bound_iv)
        if trips is None or trips > MAX_TRIPS:
            return None
        paths = cycle_paths(cfg, head, body)
        if not paths:
            return None
        lap_fuel = max(sum(cfg.blocks[b].size for b in path)
                       for path in paths)
        lap_calls = max(sum(_call_count(cfg, b) for b in path)
                        for path in paths)
        fuel += trips * lap_fuel
        helpers += trips * lap_calls
        loop_bounds.append(LoopBound(head=head, trips=trips,
                                     ranking=rep.ranking or ""))

    return FuelCertificate(fuel_bound=fuel, helper_bound=helpers,
                           loops=tuple(loop_bounds))


# --- structural pieces --------------------------------------------------


def _call_count(cfg: ControlFlowGraph, start: int) -> int:
    block = cfg.blocks[start]
    return sum(1 for pc in range(block.start, block.end)
               if cfg.instructions[pc].opcode is Op.CALL)


def _dag_longest(cfg: ControlFlowGraph, back: Set[Tuple[int, int]],
                 weight: Callable[[int], int]) -> int:
    """Longest path over the reachable graph with back edges removed
    (reverse postorder is a valid topological order of that DAG)."""
    order = cfg.topo_order()
    bound: Dict[int, int] = {}
    for start in reversed(order):
        succs = [bound[s] for s in cfg.blocks[start].successors
                 if s in bound and (start, s) not in back]
        bound[start] = weight(start) + (max(succs) if succs else 0)
    return bound.get(cfg.entry, 0)


def _preheader_state(cfg: ControlFlowGraph, absint: AbstractInterpretation,
                     head: int, body: FrozenSet[int]) -> Optional[AbsState]:
    """Join of the abstract states entering ``head`` from *outside* the
    loop — the widened fixpoint state at the head itself mixes in the
    loop's own iterations, which would destroy the initial-value
    intervals the trip bound needs."""
    states: List[AbsState] = []
    if head == cfg.entry:
        states.append(AbsState())
    for pred, block in cfg.blocks.items():
        if pred in body or head not in block.successors:
            continue
        exit_state = absint.block_exit_state(pred)
        if exit_state is None:
            continue  # unreachable predecessor: contributes nothing
        states.append(exit_state)
    if not states:
        return None
    joined = states[0]
    for other in states[1:]:
        joined.join_from(other, widen=False)
    return joined


def _sym_interval(sym: Tuple, state: AbsState) -> Optional[Interval]:
    """Concretize a termination-checker symbolic value against an
    abstract state (slot keys are FP-relative; absint slots are 0-based
    from STACK_BASE)."""
    kind, key, delta = sym
    if kind == "const":
        iv = domain.const(int(key))
    elif kind == "var":
        space, index = key
        if space == "r":
            iv = state.regs[index]
        else:
            iv = state.slots.get(STACK_SIZE + index, domain.TOP)
    else:
        return None
    if delta:
        iv = domain.add_const(iv, delta)
    return iv


def _counter_safe(cfg: ControlFlowGraph, absint: AbstractInterpretation,
                  body: FrozenSet[int], counter: Tuple) -> bool:
    """Registers are written only by tracked instructions, so register
    counters are always safe.  A stack-slot counter can additionally be
    clobbered by (a) helpers, which may write the running stack, or
    (b) stores the termination checker does not model; accept the slot
    only when the body provably contains neither."""
    if counter[0] != "var" or counter[1][0] == "r":
        return True
    fp_off = counter[1][1]
    for pc, ins in cfg.loop_instructions(body):
        op = ins.opcode
        if op is Op.CALL:
            return False
        if op not in MEM_OPS or op in LOAD_OPS:
            continue
        size = MEM_SIZES[op]
        if ins.dst == FP_REGISTER:
            overlaps = ins.offset < fp_off + 8 and fp_off < ins.offset + size
            if overlaps and not (op is Op.STXDW and ins.offset == fp_off):
                return False  # untracked write over the counter slot
            continue
        res = absint.pc_results.get(pc)
        if res is None or res.region != "heap":
            return False  # store that may land in the stack
    return True


# --- trip-count arithmetic ----------------------------------------------


def _ceil_div(a: int, b: int) -> int:
    return -(-a // b)


def _trip_bound(stay_op: Op, counter: Interval, delta: int,
                bound: Interval) -> Optional[int]:
    """Worst-case laps of ``stay while counter <op> bound`` where the
    counter moves by ``delta`` per lap (unsigned 64-bit semantics); the
    guards reject any run that could wrap around 2^64."""
    c_lo, c_hi = counter
    b_lo, b_hi = bound
    if stay_op is Op.JLT and delta > 0:
        if b_hi - 1 + delta > _WORD:
            return None
        return _ceil_div(b_hi - c_lo, delta) if b_hi > c_lo else 0
    if stay_op is Op.JLE and delta > 0:
        if b_hi + delta > _WORD:
            return None
        return (b_hi - c_lo) // delta + 1 if b_hi >= c_lo else 0
    if stay_op is Op.JGT and delta < 0:
        step = -delta
        if b_lo < step - 1:
            return None
        return _ceil_div(c_hi - b_lo, step) if c_hi > b_lo else 0
    if stay_op is Op.JGE and delta < 0:
        step = -delta
        if b_lo < step:
            return None
        return (c_hi - b_lo) // step + 1 if c_hi >= b_lo else 0
    if stay_op is Op.JNE and delta == 1:
        if b_lo != b_hi or c_hi > b_lo:
            return None
        return b_lo - c_lo
    if stay_op is Op.JNE and delta == -1:
        if b_lo != b_hi or c_lo < b_lo:
            return None
        return c_hi - b_lo
    return None  # signed comparisons and exotic deltas: not certified
