"""Manifest-level lint: plugin metadata cross-checked with the analyzer.

The bytecode rules (:mod:`.rules`) see one program at a time; this layer
sees the whole plugin manifest — pluglet names, protocol-operation
bindings, anchors and runtime budgets — and cross-checks them against
what the analyzer proved:

* ``PRE110`` — a declared fuel / helper budget smaller than the
  analyzer's worst-case bound (the pluglet *will* exhaust it);
* ``PRE111`` — a protocol-operation name the host does not know (with a
  close-match suggestion for typos);
* ``PRE112`` — an unknown anchor;
* ``PRE113`` — a helper id called by the bytecode but absent from the
  host helper table.

The plugin argument is duck-typed (``name`` / ``pluglets`` /
``memory_size``) so this module stays below :mod:`repro.core` in the
layering.
"""

from __future__ import annotations

import difflib
from dataclasses import replace
from typing import Dict, Iterable, List, Optional

from .report import AnalysisReport, Diagnostic, Severity
from .rules import DEFAULT_HEAP_SIZE, analyze

_KNOWN_ANCHORS = ("replace", "pre", "post", "external")


def _tag(diag: Diagnostic, pluglet: str) -> Diagnostic:
    return replace(diag, pluglet=pluglet)


def lint_plugin(
    plugin: object,
    protoop_names: Optional[Iterable[str]] = None,
    helper_ids: Optional[Iterable[int]] = None,
) -> List[Diagnostic]:
    """Lint one plugin: every pluglet's bytecode plus the manifest.

    ``protoop_names`` / ``helper_ids`` are the host's known sets; when
    None the corresponding manifest checks are skipped (a plugin may
    legitimately declare new operations at attach time, so ``PRE111`` is
    a warning, not an error).
    """
    reports = analyze_plugin(plugin)
    known_ops = set(protoop_names) if protoop_names is not None else None
    known_helpers = set(helper_ids) if helper_ids is not None else None

    diagnostics: List[Diagnostic] = []
    for pluglet in plugin.pluglets:  # type: ignore[attr-defined]
        report = reports[pluglet.name]
        diagnostics.extend(_tag(d, pluglet.name) for d in report.diagnostics)
        diagnostics.extend(
            _tag(d, pluglet.name)
            for d in _lint_manifest_entry(pluglet, report,
                                          known_ops, known_helpers))
    return diagnostics


def analyze_plugin(plugin: object) -> Dict[str, AnalysisReport]:
    """Analyzer reports for every pluglet, keyed by pluglet name, using
    the plugin's declared memory size for the heap proofs."""
    heap_size = getattr(plugin, "memory_size", DEFAULT_HEAP_SIZE)
    return {
        p.name: analyze(p.instructions, heap_size=heap_size)
        for p in plugin.pluglets  # type: ignore[attr-defined]
    }


def _lint_manifest_entry(
    pluglet: object,
    report: AnalysisReport,
    known_ops: Optional[set],
    known_helpers: Optional[set],
) -> List[Diagnostic]:
    diags: List[Diagnostic] = []
    fuel = getattr(pluglet, "fuel", 0)
    helper_budget = getattr(pluglet, "helper_budget", 0)
    protoop = getattr(pluglet, "protoop", "")
    anchor = getattr(pluglet, "anchor", "")

    if fuel and report.fuel_bound is not None and fuel < report.fuel_bound:
        diags.append(Diagnostic(
            "PRE110", Severity.WARNING,
            f"declared fuel budget {fuel} is below the analyzer's "
            f"worst-case bound {report.fuel_bound}"))
    if helper_budget and report.helper_bound is not None \
            and helper_budget < report.helper_bound:
        diags.append(Diagnostic(
            "PRE110", Severity.WARNING,
            f"declared helper-call budget {helper_budget} is below the "
            f"analyzer's worst-case bound {report.helper_bound}"))

    # An ``external`` pluglet *defines* a new app-facing operation
    # (§2.2); only the anchors that hook an existing operation are
    # checked against the host's registry.
    if known_ops is not None and anchor != "external" \
            and protoop not in known_ops:
        close = difflib.get_close_matches(protoop, known_ops, n=1)
        hint = f" (did you mean {close[0]!r}?)" if close else ""
        diags.append(Diagnostic(
            "PRE111", Severity.WARNING,
            f"unknown protocol operation {protoop!r}{hint}"))

    if anchor not in _KNOWN_ANCHORS:
        close = difflib.get_close_matches(anchor, _KNOWN_ANCHORS, n=1)
        hint = f" (did you mean {close[0]!r}?)" if close else ""
        diags.append(Diagnostic(
            "PRE112", Severity.ERROR, f"unknown anchor {anchor!r}{hint}"))

    if known_helpers is not None:
        for hid in report.helper_ids:
            if hid >= 0 and hid not in known_helpers:
                diags.append(Diagnostic(
                    "PRE113", Severity.WARNING,
                    f"helper id {hid} is not provided by the host"))
    return diags
