"""Control-flow graph construction for PRE bytecode.

Basic blocks are maximal straight-line instruction runs; leaders are the
entry, every jump target and every instruction after a jump or ``exit``
(the same partition :mod:`repro.vm.jit` compiles from).  Edges follow
the interpreter's control transfers exactly:

* ``exit`` terminates — no successors;
* an out-of-range jump target or falling past the last instruction
  faults at run time (``pc out of program``) — also no successors, but
  the block is recorded in :attr:`ControlFlowGraph.fall_off` so rules
  can flag it;
* a conditional jump has up to two successors (target, fall-through).

On top of the raw graph the module computes reachability, DFS-exact
cycle detection (``loop_free``), back edges with their natural loops,
and a topological order of the acyclic reachable subgraph for
longest-path bounds.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Sequence, Set, Tuple

from ..isa import JMP_IMM_OPS, JMP_REG_OPS, JUMP_OPS, Instruction, Op

_COND_OPS = JMP_REG_OPS | JMP_IMM_OPS


@dataclass(frozen=True)
class BasicBlock:
    """Instructions ``[start, end)`` with no internal control transfer."""

    start: int
    end: int
    successors: Tuple[int, ...]  # start pcs of successor blocks

    @property
    def size(self) -> int:
        return self.end - self.start


class ControlFlowGraph:
    """The block graph of one program plus derived structure."""

    def __init__(self, instructions: Sequence[Instruction]):
        self.instructions = list(instructions)
        n = len(self.instructions)
        self.blocks: Dict[int, BasicBlock] = {}
        #: Block starts whose execution can run past the program (or take
        #: an out-of-range jump): a guaranteed runtime fault if reached.
        self.fall_off: Set[int] = set()
        if n == 0:
            self.entry = 0
            self._reachable: FrozenSet[int] = frozenset()
            self._loop_free = True
            self._back_edges: List[Tuple[int, int]] = []
            return

        leaders = {0}
        for pc, ins in enumerate(self.instructions):
            op = ins.opcode
            if op in JUMP_OPS or op is Op.EXIT:
                if pc + 1 < n:
                    leaders.add(pc + 1)
                if op in JUMP_OPS:
                    target = pc + 1 + ins.offset
                    if 0 <= target < n:
                        leaders.add(target)
        order = sorted(leaders)
        for i, start in enumerate(order):
            end = order[i + 1] if i + 1 < len(order) else n
            self.blocks[start] = BasicBlock(
                start, end, self._successors(start, end, n))
        self.entry = 0
        self._reachable = frozenset(self._compute_reachable())
        self._loop_free, self._back_edges = self._dfs_cycles()

    # --- construction ---------------------------------------------------

    def _successors(self, start: int, end: int, n: int) -> Tuple[int, ...]:
        last = self.instructions[end - 1]
        op = last.opcode
        if op is Op.EXIT:
            return ()
        if op is Op.JA:
            target = end + last.offset
            if 0 <= target < n:
                return (target,)
            self.fall_off.add(start)
            return ()
        if op in _COND_OPS:
            succs = []
            target = end + last.offset
            if 0 <= target < n:
                succs.append(target)
            else:
                self.fall_off.add(start)
            if end < n:
                if end not in succs:
                    succs.append(end)
            else:
                self.fall_off.add(start)
            return tuple(succs)
        # Straight-line block: falls into the next leader, or off the end.
        if end < n:
            return (end,)
        self.fall_off.add(start)
        return ()

    def _compute_reachable(self) -> Set[int]:
        seen: Set[int] = set()
        stack = [self.entry]
        while stack:
            b = stack.pop()
            if b in seen:
                continue
            seen.add(b)
            stack.extend(s for s in self.blocks[b].successors if s not in seen)
        return seen

    def _dfs_cycles(self) -> Tuple[bool, List[Tuple[int, int]]]:
        """Iterative DFS over the reachable subgraph.

        Returns ``(acyclic, back_edges)``; an edge to a gray (on-stack)
        node is a back edge, and their absence proves the graph acyclic.
        """
        WHITE, GRAY, BLACK = 0, 1, 2
        color = {b: WHITE for b in self._reachable}
        back: List[Tuple[int, int]] = []
        for root in sorted(self._reachable):
            if color[root] != WHITE:
                continue
            stack: List[Tuple[int, int]] = [(root, 0)]
            color[root] = GRAY
            while stack:
                node, idx = stack[-1]
                succs = self.blocks[node].successors
                if idx < len(succs):
                    stack[-1] = (node, idx + 1)
                    nxt = succs[idx]
                    if color[nxt] == WHITE:
                        color[nxt] = GRAY
                        stack.append((nxt, 0))
                    elif color[nxt] == GRAY:
                        back.append((node, nxt))
                else:
                    color[node] = BLACK
                    stack.pop()
        return (not back), back

    # --- queries ---------------------------------------------------------

    @property
    def reachable_blocks(self) -> FrozenSet[int]:
        return self._reachable

    def reachable_pcs(self) -> List[int]:
        pcs: List[int] = []
        for start in sorted(self._reachable):
            block = self.blocks[start]
            pcs.extend(range(block.start, block.end))
        return pcs

    @property
    def loop_free(self) -> bool:
        """Exact: no cycle among reachable blocks."""
        return self._loop_free

    @property
    def back_edges(self) -> List[Tuple[int, int]]:
        """DFS back edges ``(tail, head)`` over reachable blocks."""
        return list(self._back_edges)

    def predecessors(self) -> Dict[int, List[int]]:
        preds: Dict[int, List[int]] = {b: [] for b in self.blocks}
        for start, block in self.blocks.items():
            for succ in block.successors:
                preds[succ].append(start)
        return preds

    def natural_loop(self, tail: int, head: int) -> FrozenSet[int]:
        """Blocks of the natural loop of back edge ``tail -> head``."""
        preds = self.predecessors()
        loop = {head, tail}
        work = [tail] if tail != head else []
        while work:
            node = work.pop()
            for p in preds[node]:
                if p not in loop:
                    loop.add(p)
                    work.append(p)
        return frozenset(loop)

    def loop_instructions(
            self, loop_blocks: Iterable[int]) -> List[Tuple[int, Instruction]]:
        """``(pc, instruction)`` pairs of the given loop body, in program
        order (used by the termination checker and fuel certifier)."""
        out: List[Tuple[int, Instruction]] = []
        for start in sorted(loop_blocks):
            block = self.blocks[start]
            for pc in range(block.start, block.end):
                out.append((pc, self.instructions[pc]))
        return out

    def loops(self) -> Dict[int, FrozenSet[int]]:
        """Natural loops keyed by header block (merged per header)."""
        merged: Dict[int, Set[int]] = {}
        for tail, head in self._back_edges:
            merged.setdefault(head, set()).update(self.natural_loop(tail, head))
        return {head: frozenset(body) for head, body in merged.items()}

    def terminator_blocks(self) -> Set[int]:
        """Blocks execution cannot leave via an edge (exit or fault)."""
        return {b for b in self.blocks if not self.blocks[b].successors}

    def can_terminate_from(self) -> Set[int]:
        """Reachable blocks from which some terminator is reachable.

        A reachable block *not* in this set can never stop executing by
        itself — entering it is a guaranteed infinite loop (stopped only
        by the fuel budget or a faulting side effect)."""
        preds = self.predecessors()
        settled = {b for b in self.terminator_blocks() if b in self._reachable}
        work = list(settled)
        while work:
            node = work.pop()
            for p in preds[node]:
                if p in self._reachable and p not in settled:
                    settled.add(p)
                    work.append(p)
        return settled

    def topo_order(self) -> List[int]:
        """Reverse-postorder of the reachable subgraph (valid topological
        order when :attr:`loop_free`)."""
        seen: Set[int] = set()
        post: List[int] = []
        if not self._reachable:
            return post
        stack: List[Tuple[int, int]] = [(self.entry, 0)]
        seen.add(self.entry)
        while stack:
            node, idx = stack[-1]
            succs = self.blocks[node].successors
            if idx < len(succs):
                stack[-1] = (node, idx + 1)
                nxt = succs[idx]
                if nxt not in seen:
                    seen.add(nxt)
                    stack.append((nxt, 0))
            else:
                post.append(node)
                stack.pop()
        post.reverse()
        return post

    def unreachable_blocks(self) -> List[int]:
        return sorted(b for b in self.blocks if b not in self._reachable)


def build_cfg(instructions: Iterable[Instruction]) -> ControlFlowGraph:
    """Construct the CFG of a structurally valid program."""
    return ControlFlowGraph(list(instructions))
