"""A small two-pass assembler and disassembler for the PRE ISA.

Syntax (one instruction per line, ``;`` comments, ``name:`` labels)::

    ; compute r0 = r1 * 2 unless r1 == 0
        mov   r0, 0
        jeq   r1, 0, done
        mov   r0, r1
        add   r0, r1
    done:
        exit

Memory operands are ``[rN+off]`` / ``[rN-off]``.  ``call`` takes either a
numeric helper id or a helper name resolved through the mapping passed to
:func:`assemble`.
"""

from __future__ import annotations

import re
from typing import Optional

from .isa import (
    JMP_IMM_OPS,
    JMP_REG_OPS,
    JUMP_OPS,
    LOAD_OPS,
    MEM_SIZES,
    STORE_IMM_OPS,
    STORE_REG_OPS,
    Instruction,
    Op,
)


class AssemblyError(Exception):
    def __init__(self, message: str, line: Optional[int] = None):
        where = f" (line {line})" if line is not None else ""
        super().__init__(f"{message}{where}")


_LABEL_RE = re.compile(r"^([A-Za-z_][\w.]*):$")
_REG_RE = re.compile(r"^r(\d+)$")
_MEM_RE = re.compile(r"^\[r(\d+)\s*([+-]\s*\d+)?\]$")

# Mnemonics that pick REG vs IMM form from the second operand.
_ALU_BASE = {
    "add": Op.ADD, "sub": Op.SUB, "mul": Op.MUL, "div": Op.DIV,
    "mod": Op.MOD, "and": Op.AND, "or": Op.OR, "xor": Op.XOR,
    "lsh": Op.LSH, "rsh": Op.RSH, "arsh": Op.ARSH, "mov": Op.MOV,
}
_JMP_BASE = {
    "jeq": Op.JEQ, "jne": Op.JNE, "jgt": Op.JGT, "jge": Op.JGE,
    "jlt": Op.JLT, "jle": Op.JLE, "jsgt": Op.JSGT, "jslt": Op.JSLT,
    "jset": Op.JSET,
}
_LOAD = {"ldxb": Op.LDXB, "ldxh": Op.LDXH, "ldxw": Op.LDXW, "ldxdw": Op.LDXDW}
_STORE_REG = {"stxb": Op.STXB, "stxh": Op.STXH, "stxw": Op.STXW, "stxdw": Op.STXDW}
_STORE_IMM = {"stb": Op.STB, "sth": Op.STH, "stw": Op.STW, "stdw": Op.STDW}


def _parse_reg(tok: str, line: int) -> int:
    m = _REG_RE.match(tok)
    if not m:
        raise AssemblyError(f"expected register, got {tok!r}", line)
    return int(m.group(1))


def _parse_int(tok: str, line: int) -> int:
    try:
        return int(tok, 0)
    except ValueError:
        raise AssemblyError(f"expected integer, got {tok!r}", line)


def _parse_mem(tok: str, line: int) -> tuple:
    m = _MEM_RE.match(tok.replace(" ", ""))
    if not m:
        raise AssemblyError(f"expected memory operand, got {tok!r}", line)
    reg = int(m.group(1))
    off = int(m.group(2).replace(" ", "")) if m.group(2) else 0
    return reg, off


def assemble(source: str, helpers: Optional[dict] = None) -> list:
    """Assemble text to a list of :class:`Instruction`."""
    helpers = helpers or {}
    lines = []
    for raw_no, raw in enumerate(source.splitlines(), start=1):
        text = raw.split(";", 1)[0].strip()
        if text:
            lines.append((raw_no, text))

    # Pass 1: collect labels.
    labels: dict[str, int] = {}
    pc = 0
    for line_no, text in lines:
        m = _LABEL_RE.match(text)
        if m:
            name = m.group(1)
            if name in labels:
                raise AssemblyError(f"duplicate label {name!r}", line_no)
            labels[name] = pc
        else:
            pc += 1

    # Pass 2: emit instructions.
    out: list[Instruction] = []
    pc = 0
    for line_no, text in lines:
        if _LABEL_RE.match(text):
            continue
        out.append(_emit(text, pc, labels, helpers, line_no))
        pc += 1
    return out


def _resolve_target(tok: str, pc: int, labels: dict, line: int) -> int:
    if tok in labels:
        return labels[tok] - pc - 1
    if tok.startswith(("+", "-")):
        return _parse_int(tok, line)
    raise AssemblyError(f"unknown label {tok!r}", line)


def _emit(text: str, pc: int, labels: dict, helpers: dict, line: int) -> Instruction:
    parts = text.replace(",", " ").split()
    mnemonic, ops = parts[0].lower(), parts[1:]

    if mnemonic == "exit":
        return Instruction(Op.EXIT)
    if mnemonic == "call":
        (target,) = ops
        if target in helpers:
            return Instruction(Op.CALL, imm=helpers[target])
        return Instruction(Op.CALL, imm=_parse_int(target, line))
    if mnemonic == "neg":
        return Instruction(Op.NEG, dst=_parse_reg(ops[0], line))
    if mnemonic == "lddw":
        return Instruction(Op.LDDW, dst=_parse_reg(ops[0], line),
                           imm=_parse_int(ops[1], line))
    if mnemonic == "ja":
        return Instruction(Op.JA, offset=_resolve_target(ops[0], pc, labels, line))
    if mnemonic in _ALU_BASE:
        dst = _parse_reg(ops[0], line)
        if _REG_RE.match(ops[1]):
            return Instruction(_ALU_BASE[mnemonic], dst=dst,
                               src=_parse_reg(ops[1], line))
        return Instruction(Op(_ALU_BASE[mnemonic] + 0x10), dst=dst,
                           imm=_parse_int(ops[1], line))
    if mnemonic in _JMP_BASE:
        dst = _parse_reg(ops[0], line)
        offset = _resolve_target(ops[2], pc, labels, line)
        if _REG_RE.match(ops[1]):
            return Instruction(_JMP_BASE[mnemonic], dst=dst,
                               src=_parse_reg(ops[1], line), offset=offset)
        return Instruction(Op(_JMP_BASE[mnemonic] + 0x10), dst=dst,
                           imm=_parse_int(ops[1], line), offset=offset)
    if mnemonic in _LOAD:
        dst = _parse_reg(ops[0], line)
        src, off = _parse_mem(ops[1], line)
        return Instruction(_LOAD[mnemonic], dst=dst, src=src, offset=off)
    if mnemonic in _STORE_REG:
        dst, off = _parse_mem(ops[0], line)
        return Instruction(_STORE_REG[mnemonic], dst=dst,
                           src=_parse_reg(ops[1], line), offset=off)
    if mnemonic in _STORE_IMM:
        dst, off = _parse_mem(ops[0], line)
        return Instruction(_STORE_IMM[mnemonic], dst=dst,
                           imm=_parse_int(ops[1], line), offset=off)
    raise AssemblyError(f"unknown mnemonic {mnemonic!r}", line)


def disassemble(instructions: list) -> str:
    """Render instructions back to assembly text (without labels)."""
    inv_alu = {v: k for k, v in _ALU_BASE.items()}
    inv_jmp = {v: k for k, v in _JMP_BASE.items()}
    inv_load = {v: k for k, v in _LOAD.items()}
    inv_sreg = {v: k for k, v in _STORE_REG.items()}
    inv_simm = {v: k for k, v in _STORE_IMM.items()}
    out = []
    for ins in instructions:
        op = ins.opcode
        if op is Op.EXIT:
            out.append("exit")
        elif op is Op.CALL:
            out.append(f"call {ins.imm}")
        elif op is Op.NEG:
            out.append(f"neg r{ins.dst}")
        elif op is Op.LDDW:
            out.append(f"lddw r{ins.dst}, {ins.imm}")
        elif op is Op.JA:
            out.append(f"ja {ins.offset:+d}")
        elif op in inv_alu:
            out.append(f"{inv_alu[op]} r{ins.dst}, r{ins.src}")
        elif Op(op) in JMP_REG_OPS:
            out.append(f"{inv_jmp[op]} r{ins.dst}, r{ins.src}, {ins.offset:+d}")
        elif Op(op) in JMP_IMM_OPS:
            base = Op(op - 0x10)
            out.append(f"{inv_jmp[base]} r{ins.dst}, {ins.imm}, {ins.offset:+d}")
        elif op in inv_load:
            out.append(f"{inv_load[op]} r{ins.dst}, [r{ins.src}{ins.offset:+d}]")
        elif op in inv_sreg:
            out.append(f"{inv_sreg[op]} [r{ins.dst}{ins.offset:+d}], r{ins.src}")
        elif op in inv_simm:
            out.append(f"{inv_simm[op]} [r{ins.dst}{ins.offset:+d}], {ins.imm}")
        elif op in {Op(o + 0x10) for o in inv_alu}:
            base = Op(op - 0x10)
            out.append(f"{inv_alu[base]} r{ins.dst}, {ins.imm}")
        else:
            out.append(f"; unknown {ins!r}")
    return "\n".join(out)
