"""Instruction set of the Pluglet Runtime Environment (PRE).

The paper's PRE is a user-space eBPF VM (§2.1).  This module defines an
eBPF-style ISA: eleven 64-bit registers ``r0``–``r10`` (``r0`` return
value, ``r1``–``r5`` arguments/scratch, ``r6``–``r9`` callee-saved
scratch, ``r10`` read-only frame pointer), a 512-byte stack, two-operand
ALU ops, conditional jumps, byte/half/word/dword loads and stores, helper
calls and ``exit``.

Like the paper's monitor, the interpreter owns one extra register that
bytecode cannot name (the bounds register used for memory monitoring) —
see :mod:`repro.vm.interpreter`.

Instructions serialize to a fixed 16-byte wire format so plugins can be
hashed, exchanged and measured.
"""

from __future__ import annotations

import enum
import struct
from dataclasses import dataclass
from typing import Iterable, List

NUM_REGISTERS = 11
FP_REGISTER = 10  # read-only frame pointer
STACK_SIZE = 512
WORD_MASK = (1 << 64) - 1


class Op(enum.IntEnum):
    """Opcodes. ALU ops ending in _IMM take an immediate source."""

    # ALU (register, register)
    ADD = 0x01
    SUB = 0x02
    MUL = 0x03
    DIV = 0x04
    MOD = 0x05
    AND = 0x06
    OR = 0x07
    XOR = 0x08
    LSH = 0x09
    RSH = 0x0A
    ARSH = 0x0B
    MOV = 0x0C
    NEG = 0x0D
    # ALU (register, immediate)
    ADD_IMM = 0x11
    SUB_IMM = 0x12
    MUL_IMM = 0x13
    DIV_IMM = 0x14
    MOD_IMM = 0x15
    AND_IMM = 0x16
    OR_IMM = 0x17
    XOR_IMM = 0x18
    LSH_IMM = 0x19
    RSH_IMM = 0x1A
    ARSH_IMM = 0x1B
    MOV_IMM = 0x1C
    # Jumps: target = pc + 1 + offset
    JA = 0x20
    JEQ = 0x21
    JNE = 0x22
    JGT = 0x23
    JGE = 0x24
    JLT = 0x25
    JLE = 0x26
    JSGT = 0x27
    JSLT = 0x28
    JSET = 0x29
    JEQ_IMM = 0x31
    JNE_IMM = 0x32
    JGT_IMM = 0x33
    JGE_IMM = 0x34
    JLT_IMM = 0x35
    JLE_IMM = 0x36
    JSGT_IMM = 0x37
    JSLT_IMM = 0x38
    JSET_IMM = 0x39
    # Memory: LDX dst = *(size*)(src + offset); STX *(size*)(dst + offset) = src
    LDXB = 0x40
    LDXH = 0x41
    LDXW = 0x42
    LDXDW = 0x43
    STXB = 0x44
    STXH = 0x45
    STXW = 0x46
    STXDW = 0x47
    STB = 0x48   # store immediate
    STH = 0x49
    STW = 0x4A
    STDW = 0x4B
    # Control
    CALL = 0x50  # imm = helper id
    EXIT = 0x51
    LDDW = 0x52  # dst = 64-bit immediate


ALU_REG_OPS = {Op.ADD, Op.SUB, Op.MUL, Op.DIV, Op.MOD, Op.AND, Op.OR,
               Op.XOR, Op.LSH, Op.RSH, Op.ARSH, Op.MOV}
ALU_IMM_OPS = {Op.ADD_IMM, Op.SUB_IMM, Op.MUL_IMM, Op.DIV_IMM, Op.MOD_IMM,
               Op.AND_IMM, Op.OR_IMM, Op.XOR_IMM, Op.LSH_IMM, Op.RSH_IMM,
               Op.ARSH_IMM, Op.MOV_IMM}
JMP_REG_OPS = {Op.JEQ, Op.JNE, Op.JGT, Op.JGE, Op.JLT, Op.JLE, Op.JSGT,
               Op.JSLT, Op.JSET}
JMP_IMM_OPS = {Op.JEQ_IMM, Op.JNE_IMM, Op.JGT_IMM, Op.JGE_IMM, Op.JLT_IMM,
               Op.JLE_IMM, Op.JSGT_IMM, Op.JSLT_IMM, Op.JSET_IMM}
JUMP_OPS = JMP_REG_OPS | JMP_IMM_OPS | {Op.JA}
LOAD_OPS = {Op.LDXB, Op.LDXH, Op.LDXW, Op.LDXDW}
STORE_REG_OPS = {Op.STXB, Op.STXH, Op.STXW, Op.STXDW}
STORE_IMM_OPS = {Op.STB, Op.STH, Op.STW, Op.STDW}
MEM_OPS = LOAD_OPS | STORE_REG_OPS | STORE_IMM_OPS

MEM_SIZES = {
    Op.LDXB: 1, Op.LDXH: 2, Op.LDXW: 4, Op.LDXDW: 8,
    Op.STXB: 1, Op.STXH: 2, Op.STXW: 4, Op.STXDW: 8,
    Op.STB: 1, Op.STH: 2, Op.STW: 4, Op.STDW: 8,
}

#: Ops that write their dst register.
DST_WRITE_OPS = ALU_REG_OPS | ALU_IMM_OPS | {Op.NEG, Op.LDDW} | LOAD_OPS

_STRUCT = struct.Struct("<BBBbiq")  # opcode, dst, src, pad, offset, imm


@dataclass(frozen=True)
class Instruction:
    """One PRE instruction."""

    opcode: Op
    dst: int = 0
    src: int = 0
    offset: int = 0
    imm: int = 0

    def encode(self) -> bytes:
        imm = self.imm
        if imm >= 1 << 63:
            imm -= 1 << 64
        return _STRUCT.pack(int(self.opcode), self.dst, self.src, 0,
                            self.offset, imm)

    @classmethod
    def decode(cls, data: bytes) -> "Instruction":
        opcode, dst, src, _pad, offset, imm = _STRUCT.unpack(data)
        return cls(Op(opcode), dst, src, offset, imm)

    def __repr__(self) -> str:
        return (f"Instruction({self.opcode.name}, dst={self.dst}, "
                f"src={self.src}, off={self.offset}, imm={self.imm})")


def encode_program(instructions: Iterable[Instruction]) -> bytes:
    """Serialize a program to bytecode."""
    return b"".join(ins.encode() for ins in instructions)


def decode_program(bytecode: bytes) -> List[Instruction]:
    """Parse bytecode back to instructions; raises on malformed input."""
    if len(bytecode) % _STRUCT.size:
        raise ValueError("bytecode length not a multiple of instruction size")
    return [
        Instruction.decode(bytecode[i:i + _STRUCT.size])
        for i in range(0, len(bytecode), _STRUCT.size)
    ]


INSTRUCTION_SIZE = _STRUCT.size
