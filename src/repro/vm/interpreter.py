"""The PRE interpreter with runtime memory monitoring (§2.1).

"Our PRE monitors the correct operation of the pluglets by injecting
specific instructions when their bytecode is JITed.  These monitoring
instructions check that the memory accesses operate within the allowed
bounds. [...] we add a register to the VM that cannot be used by pluglets.
This register is used to check that the memory accesses performed by a
pluglet remain within either the plugin dedicated memory or the pluglet
stack.  Any violation of memory safety results in the removal of the
plugin and the termination of the connection."

This interpreter performs the same checks inline on every load and store:
the *monitor register* is the interpreter-held pair of allowed regions
(pluglet stack, plugin heap) that bytecode has no way to address.  Helper
calls go through a dispatch table provided by the host (:mod:`repro.core.api`).

Memory layout (virtual addresses):

* stack:   ``[STACK_BASE, STACK_BASE + 512)`` — fresh per invocation,
  ``r10`` starts at ``STACK_BASE + 512`` (grows down);
* heap:    ``[HEAP_BASE, HEAP_BASE + heap_size)`` — the plugin's dedicated
  memory, shared among its pluglets (Figure 2).
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from .isa import (
    ALU_IMM_OPS,
    ALU_REG_OPS,
    FP_REGISTER,
    JMP_IMM_OPS,
    JMP_REG_OPS,
    LOAD_OPS,
    MEM_SIZES,
    NUM_REGISTERS,
    STACK_SIZE,
    STORE_IMM_OPS,
    STORE_REG_OPS,
    WORD_MASK,
    Instruction,
    Op,
)

STACK_BASE = 0x1000_0000
HEAP_BASE = 0x2000_0000

#: Host defaults for the runtime fuel budgets; a manifest may override
#: them per pluglet (see :class:`repro.core.plugin.Pluglet`).
DEFAULT_FUEL = 1_000_000
DEFAULT_HELPER_BUDGET = 10_000


class VmError(Exception):
    """Base class for runtime failures inside the PRE."""


class MemoryViolation(VmError):
    """An access outside the pluglet stack / plugin memory.

    Per the paper, this removes the plugin and terminates the connection.
    """


class ExecutionError(VmError):
    """Runtime fault other than a memory violation (bad division, budget
    exhaustion, unknown helper...)."""


class FuelExhausted(ExecutionError):
    """The pluglet ran out of its per-invocation fuel (instruction) or
    helper-call budget.

    Defense in depth behind the static termination checker (§2.1): even a
    pluglet whose termination could not be proven — or whose proof was
    wrong — is stopped after a bounded amount of work.  Unlike a
    :class:`MemoryViolation`, fuel exhaustion is a *transient* fault: the
    containment policy detaches and quarantines the plugin instead of
    terminating the connection."""


def _signed(value: int) -> int:
    value &= WORD_MASK
    return value - (1 << 64) if value >= 1 << 63 else value


class PluginMemory:
    """The plugin's dedicated heap, shared by its pluglets (Figure 2)."""

    def __init__(self, size: int = 16 * 1024):
        self.size = size
        self.data = bytearray(size)

    def reset(self) -> None:
        """Reinitialize (plugin reuse across connections, §2.5)."""
        self.data[:] = bytes(self.size)


class VirtualMachine:
    """Executes one pluglet's bytecode against a plugin memory."""

    #: Which engine executes ``run`` — the profiler attributes runs to
    #: "interpreter" or "jit" through this (overridden by the JIT VM).
    execution_path = "interpreter"

    def __init__(
        self,
        instructions: List[Instruction],
        plugin_memory: PluginMemory,
        helpers: Optional[Dict[int, Callable]] = None,
        instruction_budget: int = DEFAULT_FUEL,
        helper_call_budget: int = DEFAULT_HELPER_BUDGET,
    ):
        self.instructions = instructions
        self.memory = plugin_memory
        self.helpers = helpers or {}
        self.instruction_budget = instruction_budget
        self.helper_call_budget = helper_call_budget
        self.instructions_executed = 0  # cumulative across runs
        self.helper_calls_made = 0  # cumulative across runs
        self._helper_calls = 0  # current invocation
        #: The running invocation's stack, visible to helpers so they can
        #: resolve stack addresses a pluglet passes them.
        self.current_stack: Optional[bytearray] = None

    def counters(self) -> Dict[str, object]:
        """Cumulative execution counters (profiling/monitoring hook).

        Profilers snapshot these around ``run`` and attribute the deltas;
        both engines account identically (the JIT's batched fuel charges
        match the interpreter's at every observable event), so the
        numbers are engine-independent.
        """
        return {
            "instructions_executed": self.instructions_executed,
            "helper_calls_made": self.helper_calls_made,
            "execution_path": self.execution_path,
        }

    # --- memory monitor ----------------------------------------------------

    def _region(self, address: int, size: int,
                stack: bytearray) -> Tuple[bytearray, int]:
        """The monitor: resolve an address or raise MemoryViolation."""
        if STACK_BASE <= address and address + size <= STACK_BASE + STACK_SIZE:
            return stack, address - STACK_BASE
        heap_end = HEAP_BASE + self.memory.size
        if HEAP_BASE <= address and address + size <= heap_end:
            return self.memory.data, address - HEAP_BASE
        raise MemoryViolation(
            f"access of {size} bytes at 0x{address:x} outside pluglet stack "
            f"and plugin memory"
        )

    def load(self, address: int, size: int, stack: bytearray) -> int:
        buf, off = self._region(address, size, stack)
        return int.from_bytes(buf[off:off + size], "little")

    def store(self, address: int, size: int, value: int, stack: bytearray) -> None:
        buf, off = self._region(address, size, stack)
        buf[off:off + size] = (value & ((1 << (8 * size)) - 1)).to_bytes(size, "little")

    # --- execution ----------------------------------------------------------

    def run(self, *args: int) -> int:
        """Execute the pluglet with up to five integer arguments.

        Returns ``r0``.  Raises MemoryViolation / ExecutionError on fault.
        """
        if len(args) > 5:
            raise ValueError("at most 5 arguments (r1-r5)")
        regs = [0] * NUM_REGISTERS
        for i, a in enumerate(args):
            regs[i + 1] = a & WORD_MASK
        stack = bytearray(STACK_SIZE)
        regs[FP_REGISTER] = STACK_BASE + STACK_SIZE
        pc = 0
        budget = self.instruction_budget
        ins_list = self.instructions
        n = len(ins_list)
        executed = 0
        previous_stack = self.current_stack
        self.current_stack = stack
        self._helper_calls = 0
        try:
            while True:
                if pc < 0 or pc >= n:
                    raise ExecutionError(f"pc {pc} out of program")
                if executed >= budget:
                    raise FuelExhausted(
                        f"fuel budget exhausted ({budget} instructions)"
                    )
                executed += 1
                ins = ins_list[pc]
                op = ins.opcode
                if op is Op.EXIT:
                    return regs[0]
                pc = self._step(ins, op, regs, stack, pc)
        finally:
            self.instructions_executed += executed
            self.helper_calls_made += self._helper_calls
            self.current_stack = previous_stack

    def _step(self, ins: Instruction, op: Op, regs: List[int],
              stack: bytearray, pc: int) -> int:
        if op in ALU_REG_OPS:
            regs[ins.dst] = self._alu(op, regs[ins.dst], regs[ins.src])
            return pc + 1
        if op in ALU_IMM_OPS:
            base = Op(op - 0x10)
            regs[ins.dst] = self._alu(base, regs[ins.dst], ins.imm & WORD_MASK)
            return pc + 1
        if op is Op.NEG:
            regs[ins.dst] = (-regs[ins.dst]) & WORD_MASK
            return pc + 1
        if op is Op.LDDW:
            regs[ins.dst] = ins.imm & WORD_MASK
            return pc + 1
        if op is Op.JA:
            return pc + 1 + ins.offset
        if op in JMP_REG_OPS:
            taken = self._cond(op, regs[ins.dst], regs[ins.src])
            return pc + 1 + (ins.offset if taken else 0)
        if op in JMP_IMM_OPS:
            base = Op(op - 0x10)
            taken = self._cond(base, regs[ins.dst], ins.imm & WORD_MASK)
            return pc + 1 + (ins.offset if taken else 0)
        if op in LOAD_OPS:
            size = MEM_SIZES[op]
            addr = (regs[ins.src] + ins.offset) & WORD_MASK
            regs[ins.dst] = self.load(addr, size, stack)
            return pc + 1
        if op in STORE_REG_OPS:
            size = MEM_SIZES[op]
            addr = (regs[ins.dst] + ins.offset) & WORD_MASK
            self.store(addr, size, regs[ins.src], stack)
            return pc + 1
        if op in STORE_IMM_OPS:
            size = MEM_SIZES[op]
            addr = (regs[ins.dst] + ins.offset) & WORD_MASK
            self.store(addr, size, ins.imm, stack)
            return pc + 1
        if op is Op.CALL:
            helper = self.helpers.get(ins.imm)
            if helper is None:
                raise ExecutionError(f"unknown helper id {ins.imm}")
            if self._helper_calls >= self.helper_call_budget:
                raise FuelExhausted(
                    f"helper-call budget exhausted "
                    f"({self.helper_call_budget} calls)"
                )
            self._helper_calls += 1
            result = helper(self, regs[1], regs[2], regs[3], regs[4], regs[5])
            regs[0] = (result or 0) & WORD_MASK
            return pc + 1
        raise ExecutionError(f"unhandled opcode {op!r}")

    @staticmethod
    def _alu(op: Op, dst: int, src: int) -> int:
        if op is Op.ADD:
            return (dst + src) & WORD_MASK
        if op is Op.SUB:
            return (dst - src) & WORD_MASK
        if op is Op.MUL:
            return (dst * src) & WORD_MASK
        if op is Op.DIV:
            if src == 0:
                raise ExecutionError("division by zero")
            return (dst // src) & WORD_MASK
        if op is Op.MOD:
            if src == 0:
                raise ExecutionError("modulo by zero")
            return (dst % src) & WORD_MASK
        if op is Op.AND:
            return dst & src
        if op is Op.OR:
            return dst | src
        if op is Op.XOR:
            return dst ^ src
        if op is Op.LSH:
            return (dst << (src & 63)) & WORD_MASK
        if op is Op.RSH:
            return (dst >> (src & 63)) & WORD_MASK
        if op is Op.ARSH:
            return (_signed(dst) >> (src & 63)) & WORD_MASK
        if op is Op.MOV:
            return src & WORD_MASK
        raise ExecutionError(f"bad ALU op {op!r}")

    @staticmethod
    def _cond(op: Op, dst: int, src: int) -> bool:
        if op is Op.JEQ:
            return dst == src
        if op is Op.JNE:
            return dst != src
        if op is Op.JGT:
            return dst > src
        if op is Op.JGE:
            return dst >= src
        if op is Op.JLT:
            return dst < src
        if op is Op.JLE:
            return dst <= src
        if op is Op.JSGT:
            return _signed(dst) > _signed(src)
        if op is Op.JSLT:
            return _signed(dst) < _signed(src)
        if op is Op.JSET:
            return bool(dst & src)
        raise ExecutionError(f"bad jump op {op!r}")
