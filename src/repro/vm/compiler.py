"""Compile a restricted subset of Python to PRE bytecode.

The paper's pluglets are written in C and compiled to eBPF by Clang
("This allows us to abstract the development of pluglets from eBPF
bytecode and propose a convenient C API for writing pluglets", §2.1).
Here, pluglets are written as restricted Python functions and compiled to
the PRE ISA by this module.

Supported subset — everything is a 64-bit unsigned integer:

* ``def f(a, b, ...)`` with at most five parameters;
* assignments and augmented assignments to local names;
* ``if``/``elif``/``else``, ``while``, ``break``, ``continue``, ``pass``;
* ``return expr`` (or bare ``return`` for 0);
* integer constants, ``True``/``False``;
* binary ``+ - * // % & | ^ << >>``, unary ``-``;
* comparisons and ``and``/``or``/``not`` in conditions;
* calls to declared *helper functions* with at most five arguments;
* memory dereference through the pseudo-arrays ``mem8``/``mem16``/
  ``mem32``/``mem64`` — ``x = mem64[addr]`` and ``mem8[addr] = v`` compile
  to real load/store instructions, so every access runs under the PRE
  memory monitor.

Anything else raises :class:`CompileError` — the same posture as the
paper's verifier: reject what cannot be proven safe.
"""

from __future__ import annotations

import ast
import inspect
import textwrap
from typing import Callable, Optional, Union

from .isa import FP_REGISTER, Instruction, Op

MAX_PARAMS = 5
SLOT_SIZE = 8


class CompileError(Exception):
    """The source uses constructs outside the supported subset."""


class _Label:
    """A symbolic jump target resolved in the fixup pass.

    Names are made unique by the owning compiler (per-compilation counter),
    so long-lived processes compiling many pluglets don't grow a global."""

    __slots__ = ("name",)

    def __init__(self, name: str):
        self.name = name

    def __repr__(self) -> str:
        return f"<label {self.name}>"


_MEM_LOAD = {"mem8": Op.LDXB, "mem16": Op.LDXH, "mem32": Op.LDXW, "mem64": Op.LDXDW}
_MEM_STORE = {"mem8": Op.STXB, "mem16": Op.STXH, "mem32": Op.STXW, "mem64": Op.STXDW}

_BINOPS = {
    ast.Add: Op.ADD,
    ast.Sub: Op.SUB,
    ast.Mult: Op.MUL,
    ast.FloorDiv: Op.DIV,
    ast.Mod: Op.MOD,
    ast.BitAnd: Op.AND,
    ast.BitOr: Op.OR,
    ast.BitXor: Op.XOR,
    ast.LShift: Op.LSH,
    ast.RShift: Op.RSH,
}

# Unsigned comparison ops (64-bit unsigned semantics throughout).
_CMP_TRUE = {
    ast.Eq: Op.JEQ,
    ast.NotEq: Op.JNE,
    ast.Gt: Op.JGT,
    ast.GtE: Op.JGE,
    ast.Lt: Op.JLT,
    ast.LtE: Op.JLE,
}
_CMP_FALSE = {  # jump op for the *negation* of each comparison
    ast.Eq: Op.JNE,
    ast.NotEq: Op.JEQ,
    ast.Gt: Op.JLE,
    ast.GtE: Op.JLT,
    ast.Lt: Op.JGE,
    ast.LtE: Op.JGT,
}


class PlugletCompiler:
    """Compiles one function to a list of :class:`Instruction`."""

    def __init__(self, helpers: Optional[dict] = None):
        self.helpers = helpers or {}

    # ------------------------------------------------------------------

    def compile(self, source_or_func: Union[str, Callable]) -> list:
        if callable(source_or_func):
            source = textwrap.dedent(inspect.getsource(source_or_func))
        else:
            source = textwrap.dedent(source_or_func)
        tree = ast.parse(source)
        funcs = [n for n in tree.body if isinstance(n, ast.FunctionDef)]
        if len(funcs) != 1:
            raise CompileError("source must contain exactly one function")
        return self._compile_function(funcs[0])

    def _compile_function(self, func: ast.FunctionDef) -> list:
        params = [a.arg for a in func.args.args]
        if len(params) > MAX_PARAMS:
            raise CompileError(f"at most {MAX_PARAMS} parameters supported")
        if func.args.vararg or func.args.kwarg or func.args.kwonlyargs:
            raise CompileError("only plain positional parameters supported")

        self._code: list = []
        self._locals: dict[str, int] = {}
        self._temp_base = 0
        self._loop_stack: list[tuple[_Label, _Label]] = []
        self._label_count = 0
        for name in params:
            self._slot(name)
        self._collect_locals(func.body)
        # Prologue: spill parameters (r1..r5) into their slots.
        for i, name in enumerate(params):
            self._emit(Op.STXDW, dst=FP_REGISTER,
                       offset=self._locals[name], src=i + 1)
        for stmt in func.body:
            self._stmt(stmt)
        # Implicit `return 0`.
        self._emit(Op.MOV_IMM, dst=0, imm=0)
        self._emit(Op.EXIT)
        return self._fixup()

    # ------------------------------------------------------------------

    def _collect_locals(self, body: list) -> None:
        for node in ast.walk(ast.Module(body=body, type_ignores=[])):
            if isinstance(node, ast.Assign):
                for tgt in node.targets:
                    if isinstance(tgt, ast.Name):
                        self._slot(tgt.id)
            elif isinstance(node, ast.AugAssign) and isinstance(node.target, ast.Name):
                self._slot(node.target.id)

    def _slot(self, name: str) -> int:
        if name not in self._locals:
            index = len(self._locals)
            self._locals[name] = -SLOT_SIZE * (index + 1)
            self._temp_base = -SLOT_SIZE * (len(self._locals) + 1)
        return self._locals[name]

    def _temp_slot(self, depth: int) -> int:
        offset = -SLOT_SIZE * (len(self._locals) + 1 + depth)
        if offset < -496:  # leave headroom inside the 512-byte stack
            raise CompileError("expression too deeply nested")
        return offset

    def _emit(self, opcode: Op, dst: int = 0, src: int = 0,
              offset=0, imm: int = 0) -> None:
        self._code.append([opcode, dst, src, offset, imm])

    def _new_label(self, name: str) -> _Label:
        self._label_count += 1
        return _Label(f"{name}_{self._label_count}")

    def _mark(self, label: _Label) -> None:
        self._code.append(label)

    def _fixup(self) -> list:
        positions: dict[str, int] = {}
        pc = 0
        for item in self._code:
            if isinstance(item, _Label):
                positions[item.name] = pc
            else:
                pc += 1
        out: list[Instruction] = []
        pc = 0
        for item in self._code:
            if isinstance(item, _Label):
                continue
            opcode, dst, src, offset, imm = item
            if isinstance(offset, _Label):
                offset = positions[offset.name] - pc - 1
            out.append(Instruction(opcode, dst=dst, src=src,
                                   offset=offset, imm=imm))
            pc += 1
        return out

    # --- statements ----------------------------------------------------

    def _stmt(self, node: ast.stmt) -> None:
        if isinstance(node, ast.Return):
            if node.value is not None:
                self._expr(node.value, 0)
            else:
                self._emit(Op.MOV_IMM, dst=0, imm=0)
            self._emit(Op.EXIT)
        elif isinstance(node, ast.Assign):
            if len(node.targets) != 1:
                raise CompileError("only single-target assignment supported")
            target = node.targets[0]
            if isinstance(target, ast.Subscript):
                self._store_subscript(target, node.value)
                return
            if not isinstance(target, ast.Name):
                raise CompileError("only name or memN[...] assignment supported")
            self._expr(node.value, 0)
            self._emit(Op.STXDW, dst=FP_REGISTER,
                       offset=self._slot(target.id), src=0)
        elif isinstance(node, ast.AugAssign):
            if not isinstance(node.target, ast.Name):
                raise CompileError("augmented assignment to names only")
            if type(node.op) not in _BINOPS:
                raise CompileError(
                    f"unsupported operator {type(node.op).__name__}"
                )
            slot = self._slot(node.target.id)
            self._expr(node.value, 0)
            self._emit(Op.LDXDW, dst=1, src=FP_REGISTER, offset=slot)
            self._emit(_BINOPS[type(node.op)], dst=1, src=0)
            self._emit(Op.STXDW, dst=FP_REGISTER, offset=slot, src=1)
        elif isinstance(node, ast.If):
            else_label, end_label = self._new_label("else"), self._new_label("endif")
            self._cond(node.test, false_target=else_label)
            for s in node.body:
                self._stmt(s)
            self._emit(Op.JA, offset=end_label)
            self._mark(else_label)
            for s in node.orelse:
                self._stmt(s)
            self._mark(end_label)
        elif isinstance(node, ast.While):
            if node.orelse:
                raise CompileError("while/else not supported")
            top, end = self._new_label("loop"), self._new_label("endloop")
            self._mark(top)
            self._cond(node.test, false_target=end)
            self._loop_stack.append((top, end))
            for s in node.body:
                self._stmt(s)
            self._loop_stack.pop()
            self._emit(Op.JA, offset=top)
            self._mark(end)
        elif isinstance(node, ast.Break):
            if not self._loop_stack:
                raise CompileError("break outside loop")
            self._emit(Op.JA, offset=self._loop_stack[-1][1])
        elif isinstance(node, ast.Continue):
            if not self._loop_stack:
                raise CompileError("continue outside loop")
            self._emit(Op.JA, offset=self._loop_stack[-1][0])
        elif isinstance(node, ast.Expr):
            self._expr(node.value, 0)  # e.g. a bare helper call
        elif isinstance(node, ast.Pass):
            pass
        else:
            raise CompileError(f"unsupported statement {type(node).__name__}")

    # --- conditions ------------------------------------------------------

    def _cond(self, test: ast.expr, false_target: _Label) -> None:
        """Emit code that falls through when ``test`` is true and jumps to
        ``false_target`` otherwise."""
        if isinstance(test, ast.BoolOp):
            if isinstance(test.op, ast.And):
                for value in test.values:
                    self._cond(value, false_target)
            else:  # Or: jump to body if any true
                true_target = self._new_label("or_true")
                for value in test.values[:-1]:
                    self._cond_true(value, true_target)
                self._cond(test.values[-1], false_target)
                self._mark(true_target)
            return
        if isinstance(test, ast.UnaryOp) and isinstance(test.op, ast.Not):
            self._cond_true(test.operand, false_target)
            return
        if isinstance(test, ast.Compare):
            self._compare(test, _CMP_FALSE, false_target)
            return
        # Bare expression: false iff zero.
        self._expr(test, 0)
        self._emit(Op.JEQ_IMM, dst=0, imm=0, offset=false_target)

    def _cond_true(self, test: ast.expr, true_target: _Label) -> None:
        """Jump to ``true_target`` when ``test`` is true."""
        if isinstance(test, ast.Compare):
            self._compare(test, _CMP_TRUE, true_target)
            return
        if isinstance(test, ast.UnaryOp) and isinstance(test.op, ast.Not):
            self._cond(test.operand, true_target)
            return
        self._expr(test, 0)
        self._emit(Op.JNE_IMM, dst=0, imm=0, offset=true_target)

    def _compare(self, test: ast.Compare, table: dict, target: _Label) -> None:
        if len(test.ops) != 1 or len(test.comparators) != 1:
            raise CompileError("chained comparisons not supported")
        op_type = type(test.ops[0])
        if op_type not in table:
            raise CompileError(f"unsupported comparison {op_type.__name__}")
        # left -> temp, right -> r0, left -> r1, compare r1 ? r0
        self._expr(test.left, 0)
        tmp = self._temp_slot(0)
        self._emit(Op.STXDW, dst=FP_REGISTER, offset=tmp, src=0)
        self._expr(test.comparators[0], 1)
        self._emit(Op.LDXDW, dst=1, src=FP_REGISTER, offset=tmp)
        self._emit(table[op_type], dst=1, src=0, offset=target)

    # --- expressions ------------------------------------------------------

    def _expr(self, node: ast.expr, depth: int) -> None:
        """Evaluate ``node`` into r0, using temp slots beyond ``depth``."""
        if isinstance(node, ast.Constant):
            if node.value is True or node.value is False:
                self._emit(Op.MOV_IMM, dst=0, imm=int(node.value))
            elif isinstance(node.value, int):
                value = node.value
                if 0 <= value < (1 << 31):
                    self._emit(Op.MOV_IMM, dst=0, imm=value)
                else:
                    self._emit(Op.LDDW, dst=0, imm=value & ((1 << 64) - 1))
            else:
                raise CompileError(
                    f"unsupported constant {node.value!r} (integers only)"
                )
        elif isinstance(node, ast.Name):
            if node.id not in self._locals:
                raise CompileError(f"undefined name {node.id!r}")
            self._emit(Op.LDXDW, dst=0, src=FP_REGISTER,
                       offset=self._locals[node.id])
        elif isinstance(node, ast.BinOp):
            if type(node.op) not in _BINOPS:
                raise CompileError(
                    f"unsupported operator {type(node.op).__name__}"
                )
            self._expr(node.left, depth)
            tmp = self._temp_slot(depth)
            self._emit(Op.STXDW, dst=FP_REGISTER, offset=tmp, src=0)
            self._expr(node.right, depth + 1)
            self._emit(Op.LDXDW, dst=1, src=FP_REGISTER, offset=tmp)
            self._emit(_BINOPS[type(node.op)], dst=1, src=0)
            self._emit(Op.MOV, dst=0, src=1)
        elif isinstance(node, ast.UnaryOp):
            if isinstance(node.op, ast.USub):
                self._expr(node.operand, depth)
                self._emit(Op.NEG, dst=0)
            elif isinstance(node.op, ast.Invert):
                self._expr(node.operand, depth)
                self._emit(Op.XOR_IMM, dst=0, imm=-1)
            else:
                raise CompileError(
                    f"unsupported unary {type(node.op).__name__}"
                )
        elif isinstance(node, ast.Call):
            self._call(node, depth)
        elif isinstance(node, ast.Subscript):
            self._load_subscript(node, depth)
        else:
            raise CompileError(f"unsupported expression {type(node).__name__}")

    def _mem_name(self, node: ast.Subscript, table: dict) -> Op:
        if not isinstance(node.value, ast.Name) or node.value.id not in table:
            raise CompileError(
                "subscripts only on mem8/mem16/mem32/mem64 pseudo-arrays"
            )
        return table[node.value.id]

    def _load_subscript(self, node: ast.Subscript, depth: int) -> None:
        opcode = self._mem_name(node, _MEM_LOAD)
        self._expr(node.slice, depth)
        self._emit(opcode, dst=0, src=0, offset=0)

    def _store_subscript(self, target: ast.Subscript, value: ast.expr) -> None:
        opcode = self._mem_name(target, _MEM_STORE)
        self._expr(value, 0)
        tmp = self._temp_slot(0)
        self._emit(Op.STXDW, dst=FP_REGISTER, offset=tmp, src=0)
        self._expr(target.slice, 1)
        self._emit(Op.MOV, dst=1, src=0)              # r1 = address
        self._emit(Op.LDXDW, dst=0, src=FP_REGISTER, offset=tmp)  # r0 = value
        self._emit(opcode, dst=1, src=0, offset=0)

    def _call(self, node: ast.Call, depth: int) -> None:
        if not isinstance(node.func, ast.Name):
            raise CompileError("only direct helper calls supported")
        name = node.func.id
        if name not in self.helpers:
            raise CompileError(f"unknown helper {name!r}")
        if node.keywords:
            raise CompileError("keyword arguments not supported")
        if len(node.args) > MAX_PARAMS:
            raise CompileError("helpers take at most 5 arguments")
        slots = []
        for i, arg in enumerate(node.args):
            self._expr(arg, depth + i)
            tmp = self._temp_slot(depth + i)
            self._emit(Op.STXDW, dst=FP_REGISTER, offset=tmp, src=0)
            slots.append(tmp)
        for i, tmp in enumerate(slots):
            self._emit(Op.LDXDW, dst=i + 1, src=FP_REGISTER, offset=tmp)
        self._emit(Op.CALL, imm=self.helpers[name])


def compile_pluglet(source_or_func, helpers: Optional[dict] = None) -> list:
    """Convenience wrapper: compile one function with a helper mapping."""
    return PlugletCompiler(helpers).compile(source_or_func)
