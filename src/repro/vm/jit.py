"""JIT translation of verified PRE bytecode into specialized Python closures.

The paper's PRE does not interpret pluglet bytecode: "our PRE monitors the
correct operation of the pluglets by injecting specific instructions when
their bytecode is JITed" (§2.1), and the low overheads of Table 3 depend on
it.  This module mirrors that design point at the Python level: a verified
program is translated *once* into a single specialized Python function —
one function per pluglet — and the memory monitor plus fuel accounting are
injected inline into the generated code as cheap local-variable
comparisons, exactly the "monitoring instructions" of the paper.

Translation scheme
==================

* Registers ``r0``–``r9`` become Python locals; the read-only frame
  pointer ``r10`` is folded to the constant ``STACK_BASE + STACK_SIZE``.
  Generated code maintains the invariant that every register local is a
  non-negative int below 2**64, so masking is emitted only where a result
  can actually leave that range.
* Control flow is flattened: basic blocks become guarded sections
  ``if _bb <= k:`` inside a single ``while 1:`` loop.  A jump sets ``_bb``
  and ``continue``s; falling off a block flows naturally into the next
  guard, so straight-line code pays nothing for the dispatch.
* Frame-pointer-relative accesses (the common case for compiled pluglets)
  have their bounds check folded away at translation time; other accesses
  get the two-region monitor check inlined as two chained comparisons.
* Fuel is accounted in *batches*: pure register-only instructions
  accumulate a pending count which is flushed — ``_fuel -= k`` plus one
  comparison — before any instruction whose effects are observable from
  outside the register file (memory, helpers, division faults, exit) and
  at every block boundary.  At any observable event the charged total is
  exactly the interpreter's count, so results, cumulative counters and
  fault classes are bit-identical to :class:`~repro.vm.interpreter.
  VirtualMachine` (the differential suite in ``tests/test_vm_jit.py``
  enforces this).

Proof-guided specialization
===========================

When the static analyzer (:mod:`repro.vm.analysis`) proves facts about a
program, ``compile_jit`` accepts its report as ``proof`` and emits a
*second*, leaner closure:

* a memory access proven to always land in one region loses the inlined
  two-region monitor and indexes the buffer directly;
* a program with a worst-case ``fuel_bound`` keeps its exact
  ``_fuel -= k`` accounting but drops every exhaustion *check* — the
  bound comes from loop-freedom or, for looping programs, from a static
  fuel certificate (:mod:`repro.vm.analysis.fuelbound`: proven trip
  counts x per-lap cost, recorded in the analysis report);
* likewise the helper-call budget check when ``helper_bound`` is proven.

Eliding a budget check is only equivalent when the budget cannot be hit,
so :class:`JitVirtualMachine` gates the specialized closure at run time:
it is used only when ``instruction_budget >= fuel_bound`` and
``helper_call_budget >= helper_bound`` (and the actual plugin memory is
at least the size the proofs assumed); otherwise every run goes through
the fully-checked closure.  Both closures flush fuel at identical
program points, so counters and fault behaviour stay bit-identical
either way.

The interpreter remains the reference semantics: anything ``compile_jit``
does not cover raises :class:`JitError` and :class:`JitVirtualMachine`
falls back to interpreting, so the JIT can never change behaviour — only
speed.
"""

from __future__ import annotations

import os
import struct
from typing import Callable, List, Optional

from .interpreter import (
    DEFAULT_FUEL,
    DEFAULT_HELPER_BUDGET,
    HEAP_BASE,
    STACK_BASE,
    ExecutionError,
    FuelExhausted,
    MemoryViolation,
    PluginMemory,
    VirtualMachine,
)
from .isa import (
    ALU_IMM_OPS,
    ALU_REG_OPS,
    DST_WRITE_OPS,
    FP_REGISTER,
    JMP_IMM_OPS,
    JMP_REG_OPS,
    JUMP_OPS,
    LOAD_OPS,
    MEM_SIZES,
    NUM_REGISTERS,
    STACK_SIZE,
    STORE_IMM_OPS,
    STORE_REG_OPS,
    WORD_MASK,
    Op,
)

__all__ = [
    "JitError",
    "compile_jit",
    "JitVirtualMachine",
    "create_vm",
    "jit_enabled_by_env",
]

_M = WORD_MASK
_M_LIT = str(WORD_MASK)  # 18446744073709551615
_SIGN_LIT = str(1 << 63)
_TWO64_LIT = str(1 << 64)
_STACK_TOP = STACK_BASE + STACK_SIZE

#: Programs larger than this fall back to the interpreter — keeps worst
#: case translation time bounded (the verifier itself allows 65k).
MAX_JIT_PROGRAM = 16_384


class JitError(Exception):
    """The program cannot be translated; callers fall back to the
    interpreter (which yields identical runtime semantics)."""


# Pure instructions only touch the register file and cannot fault, so
# their fuel may be charged in arrears (registers are unobservable after
# a fault).  DIV/MOD by register can fault and are excluded; DIV_IMM /
# MOD_IMM are pure only because translation rejects a zero immediate.
_PURE_ALU_REG = {Op.ADD, Op.SUB, Op.MUL, Op.AND, Op.OR, Op.XOR, Op.LSH,
                 Op.RSH, Op.ARSH, Op.MOV}

_CMP = {
    Op.JEQ: "==",
    Op.JNE: "!=",
    Op.JGT: ">",
    Op.JGE: ">=",
    Op.JLT: "<",
    Op.JLE: "<=",
}

_EXEC_GLOBALS = {
    "__builtins__": {},
    "_ExecutionError": ExecutionError,
    "_FuelExhausted": FuelExhausted,
    "_MemoryViolation": MemoryViolation,
    "_u2": struct.Struct("<H").unpack_from,
    "_u4": struct.Struct("<I").unpack_from,
    "_u8": struct.Struct("<Q").unpack_from,
    "_p2": struct.Struct("<H").pack_into,
    "_p4": struct.Struct("<I").pack_into,
    "_p8": struct.Struct("<Q").pack_into,
}


def _signed_const(value: int) -> int:
    value &= _M
    return value - (1 << 64) if value >= 1 << 63 else value


def _reg_expr(reg: int) -> str:
    """Expression for reading a register (r10 folds to a constant)."""
    return str(_STACK_TOP) if reg == FP_REGISTER else f"r{reg}"


def _signed_expr(expr: str) -> str:
    return f"(({expr} - {_TWO64_LIT}) if {expr} >= {_SIGN_LIT} else {expr})"


def _alu_line(base: Op, dst: int, src_expr: str,
              src_const: Optional[int]) -> str:
    rd = f"r{dst}"
    if base is Op.ADD:
        return f"{rd} = ({rd} + {src_expr}) & {_M_LIT}"
    if base is Op.SUB:
        return f"{rd} = ({rd} - {src_expr}) & {_M_LIT}"
    if base is Op.MUL:
        return f"{rd} = ({rd} * {src_expr}) & {_M_LIT}"
    if base is Op.AND:
        return f"{rd} = {rd} & {src_expr}"
    if base is Op.OR:
        return f"{rd} = {rd} | {src_expr}"
    if base is Op.XOR:
        return f"{rd} = {rd} ^ {src_expr}"
    if base is Op.MOV:
        return f"{rd} = {src_expr}"
    if base is Op.DIV:  # pure only for verified nonzero immediates
        return f"{rd} = {rd} // {src_expr}"
    if base is Op.MOD:
        return f"{rd} = {rd} % {src_expr}"
    if base in (Op.LSH, Op.RSH, Op.ARSH):
        sh = str(src_const & 63) if src_const is not None \
            else f"({src_expr} & 63)"
        if base is Op.LSH:
            return f"{rd} = ({rd} << {sh}) & {_M_LIT}"
        if base is Op.RSH:
            return f"{rd} = {rd} >> {sh}"
        return (f"{rd} = ((({rd} - {_TWO64_LIT}) >> {sh}) & {_M_LIT}) "
                f"if {rd} >= {_SIGN_LIT} else ({rd} >> {sh})")
    raise JitError(f"unsupported ALU op {base!r}")


def _cond_expr(base: Op, a_expr: str, b_expr: str,
               b_const: Optional[int]) -> str:
    if base in _CMP:
        return f"{a_expr} {_CMP[base]} {b_expr}"
    if base is Op.JSET:
        return f"{a_expr} & {b_expr}"
    if base in (Op.JSGT, Op.JSLT):
        sa = _signed_expr(a_expr)
        sb = str(_signed_const(b_const)) if b_const is not None \
            else _signed_expr(b_expr)
        return f"{sa} {'>' if base is Op.JSGT else '<'} {sb}"
    raise JitError(f"unsupported jump op {base!r}")


class _Emitter:
    """Collects generated lines for one basic block and tracks which
    runtime preamble facilities (heap view, helper table) are needed."""

    def __init__(self, indent: str, fuel_check: bool = True):
        self.lines: List[str] = []
        self.indent = indent
        self.fuel_check = fuel_check
        self.uses_heap = False
        self.uses_call = False
        self.heap_sizes: set = set()

    def emit(self, line: str) -> None:
        self.lines.append(self.indent + line)

    def flush_fuel(self, count: int) -> None:
        """Charge `count` instructions; on exhaustion the partial batch is
        zeroed so `executed == budget` exactly as the interpreter reports.
        With a proven fuel bound the check is elided (the caller gates
        the closure on `budget >= bound`) but the exact `_fuel -= k`
        accounting — at the same program points — remains."""
        if count == 0:
            return
        self.emit(f"_fuel -= {count}")
        if not self.fuel_check:
            return
        self.emit("if _fuel < 0:")
        self.emit("    _fuel = 0")
        self.emit('    raise _FuelExhausted('
                  '"fuel budget exhausted (%d instructions)" % _budget)')


def _emit_memory_op(em: _Emitter, op: Op, dst: int, src: int,
                    offset: int, imm: int,
                    region: Optional[str] = None) -> None:
    size = MEM_SIZES[op]
    is_load = op in LOAD_OPS
    base_reg = src if is_load else dst
    if is_load:
        value = None
    elif op in STORE_REG_OPS:
        value = _reg_expr(src)
        if size < 8:
            value = f"({value} & {(1 << (8 * size)) - 1})"
    else:  # store immediate: fold the mask now
        value = str(imm & ((1 << (8 * size)) - 1))

    def stack_access(addr_expr: str) -> str:
        if size == 1:
            if is_load:
                return f"r{dst} = stack[{addr_expr}]"
            return f"stack[{addr_expr}] = {value}"
        if is_load:
            return f"r{dst} = _u{size}(stack, {addr_expr})[0]"
        return f"_p{size}(stack, {addr_expr}, {value})"

    def heap_access(addr_expr: str) -> str:
        if size == 1:
            if is_load:
                return f"r{dst} = _heap[{addr_expr}]"
            return f"_heap[{addr_expr}] = {value}"
        if is_load:
            return f"r{dst} = _u{size}(_heap, {addr_expr})[0]"
        return f"_p{size}(_heap, {addr_expr}, {value})"

    if base_reg == FP_REGISTER:
        # Frame-pointer-relative: the address is a translation-time
        # constant, so the monitor check is resolved here — accesses that
        # stay in the stack need no runtime check at all.
        addr = (_STACK_TOP + offset) & _M
        if STACK_BASE <= addr <= STACK_BASE + STACK_SIZE - size:
            em.emit(stack_access(str(addr - STACK_BASE)))
        else:
            em.emit(f'raise _MemoryViolation("access of {size} bytes at '
                    f'0x{addr:x} outside pluglet stack and plugin memory")')
        return

    base = _reg_expr(base_reg)
    if offset:
        em.emit(f"_a = ({base} + ({offset})) & {_M_LIT}")
    else:
        em.emit(f"_a = {base}")
    if region == "stack":
        # Proven: every execution lands in the pluglet stack.
        em.emit(stack_access(f"_a - {STACK_BASE}"))
        return
    if region == "heap":
        em.uses_heap = True
        em.emit(heap_access(f"_a - {HEAP_BASE}"))
        return
    em.uses_heap = True
    em.heap_sizes.add(size)
    em.emit(f"if {STACK_BASE} <= _a <= {STACK_BASE + STACK_SIZE - size}:")
    em.emit("    " + stack_access(f"_a - {STACK_BASE}"))
    em.emit(f"elif {HEAP_BASE} <= _a <= _he{size}:")
    em.emit("    " + heap_access(f"_a - {HEAP_BASE}"))
    em.emit("else:")
    em.emit(f'    raise _MemoryViolation("access of {size} bytes at 0x%x '
            f'outside pluglet stack and plugin memory" % _a)')


def compile_jit(instructions, proof=None) -> Callable:
    """Translate a program into a Python function with inlined monitoring.

    The returned callable has signature ``fn(vm, stack, out, r1..r5)``;
    ``out`` is a two-slot list receiving ``[instructions_executed,
    helper_calls]`` even when the function raises.  Raises :class:`JitError`
    when the program cannot be translated (caller falls back to the
    interpreter).

    ``proof`` is an :class:`repro.vm.analysis.AnalysisReport` (or any
    object with ``mem_facts`` / ``fuel_bound`` / ``helper_bound``): its
    per-pc region facts drop the inlined memory monitor, and proven
    fuel / helper bounds drop the budget checks.  The caller MUST gate
    the resulting closure on ``instruction_budget >= fuel_bound``,
    ``helper_call_budget >= helper_bound`` and an actual plugin memory
    at least ``proof.heap_size`` bytes — :class:`JitVirtualMachine`
    does — otherwise elided checks could change behaviour.
    """
    mem_facts: dict = {}
    fuel_check = helper_check = True
    if proof is not None:
        mem_facts = dict(getattr(proof, "mem_facts", {}) or {})
        fuel_check = getattr(proof, "fuel_bound", None) is None
        helper_check = getattr(proof, "helper_bound", None) is None
    n = len(instructions)
    if n == 0:
        raise JitError("empty program")
    if n > MAX_JIT_PROGRAM:
        raise JitError(f"program too large to JIT ({n} instructions)")

    for ins in instructions:
        op = ins.opcode
        if not isinstance(op, Op):
            raise JitError(f"unknown opcode {op!r}")
        if not (0 <= ins.dst < NUM_REGISTERS and 0 <= ins.src < NUM_REGISTERS):
            raise JitError(f"register out of range in {ins!r}")
        if op in DST_WRITE_OPS and ins.dst == FP_REGISTER:
            raise JitError("write to read-only r10")
        if op in (Op.DIV_IMM, Op.MOD_IMM) and (ins.imm & _M) == 0:
            raise JitError("division by zero immediate")

    # Basic-block leaders: entry, every jump target, every fall-through
    # successor of a jump or exit.
    leaders = {0}
    for pc, ins in enumerate(instructions):
        op = ins.opcode
        if op in JUMP_OPS or op is Op.EXIT:
            if pc + 1 < n:
                leaders.add(pc + 1)
            if op in JUMP_OPS:
                target = pc + 1 + ins.offset
                if 0 <= target < n:
                    leaders.add(target)
    order = sorted(leaders)
    block_of = {start: i for i, start in enumerate(order)}

    body_indent = " " * 16
    emitters: List[_Emitter] = []
    uses_heap = False
    uses_call = False
    heap_sizes: set = set()

    for bi, start in enumerate(order):
        end = order[bi + 1] if bi + 1 < len(order) else n
        em = _Emitter(body_indent, fuel_check=fuel_check)
        emitters.append(em)
        pending = 0
        terminated = False
        for pc in range(start, end):
            ins = instructions[pc]
            op = ins.opcode

            if op in ALU_REG_OPS:
                if op in _PURE_ALU_REG:
                    em.emit(_alu_line(op, ins.dst, _reg_expr(ins.src), None))
                    pending += 1
                else:  # DIV / MOD by register: can fault
                    em.flush_fuel(pending + 1)
                    pending = 0
                    src = _reg_expr(ins.src)
                    word = "division" if op is Op.DIV else "modulo"
                    em.emit(f"if {src} == 0:")
                    em.emit(f'    raise _ExecutionError("{word} by zero")')
                    line = (f"r{ins.dst} = r{ins.dst} // {src}"
                            if op is Op.DIV else
                            f"r{ins.dst} = r{ins.dst} % {src}")
                    em.emit(line)
                continue
            if op in ALU_IMM_OPS:
                base = Op(op - 0x10)
                const = ins.imm & _M
                em.emit(_alu_line(base, ins.dst, str(const), const))
                pending += 1
                continue
            if op is Op.NEG:
                em.emit(f"r{ins.dst} = (-r{ins.dst}) & {_M_LIT}")
                pending += 1
                continue
            if op is Op.LDDW:
                em.emit(f"r{ins.dst} = {ins.imm & _M}")
                pending += 1
                continue
            if op in LOAD_OPS or op in STORE_REG_OPS or op in STORE_IMM_OPS:
                em.flush_fuel(pending + 1)
                pending = 0
                _emit_memory_op(em, op, ins.dst, ins.src, ins.offset,
                                ins.imm, region=mem_facts.get(pc))
                continue
            if op is Op.CALL:
                em.flush_fuel(pending + 1)
                pending = 0
                uses_call = True
                em.emit(f"_h = _hget({ins.imm})")
                em.emit("if _h is None:")
                em.emit(f'    raise _ExecutionError('
                        f'"unknown helper id {ins.imm}")')
                if helper_check:
                    em.emit("if _hcalls >= _hbudget:")
                    em.emit('    raise _FuelExhausted('
                            '"helper-call budget exhausted (%d calls)" '
                            '% _hbudget)')
                em.emit("_hcalls += 1")
                em.emit("_r = _h(vm, r1, r2, r3, r4, r5)")
                em.emit(f"r0 = (_r or 0) & {_M_LIT}")
                continue
            if op is Op.EXIT:
                em.flush_fuel(pending + 1)
                em.emit("return r0")
                terminated = True
                continue
            if op is Op.JA:
                em.flush_fuel(pending + 1)
                target = pc + 1 + ins.offset
                if target < 0 or target >= n:
                    em.emit(f'raise _ExecutionError('
                            f'"pc {target} out of program")')
                elif target != pc + 1:
                    em.emit(f"_bb = {block_of[target]}")
                    em.emit("continue")
                terminated = True
                continue
            if op in JMP_REG_OPS or op in JMP_IMM_OPS:
                em.flush_fuel(pending + 1)
                if op in JMP_REG_OPS:
                    base = op
                    b_const = _STACK_TOP if ins.src == FP_REGISTER else None
                    b_expr = _reg_expr(ins.src)
                else:
                    base = Op(op - 0x10)
                    b_const = ins.imm & _M
                    b_expr = str(b_const)
                cond = _cond_expr(base, _reg_expr(ins.dst), b_expr, b_const)
                target = pc + 1 + ins.offset
                if target != pc + 1 or target >= n:
                    em.emit(f"if {cond}:")
                    if target < 0 or target >= n:
                        em.emit(f'    raise _ExecutionError('
                                f'"pc {target} out of program")')
                    else:
                        em.emit(f"    _bb = {block_of[target]}")
                        em.emit("    continue")
                if pc + 1 >= n:
                    em.emit(f'raise _ExecutionError('
                            f'"pc {pc + 1} out of program")')
                terminated = True
                continue
            raise JitError(f"unsupported opcode {op!r}")

        if not terminated:
            # Fell off the block end: either into the next block (pc is a
            # jump target) or off the end of the program.
            em.flush_fuel(pending)
            if end == n:
                em.emit(f'raise _ExecutionError("pc {n} out of program")')
        uses_heap = uses_heap or em.uses_heap
        heap_sizes |= em.heap_sizes

    lines: List[str] = [
        "def _pluglet(vm, stack, out, r1, r2, r3, r4, r5):",
        "    _budget = vm.instruction_budget",
        "    _fuel = _budget",
        "    _hcalls = 0",
    ]
    if uses_call:
        lines.append("    _hbudget = vm.helper_call_budget")
        lines.append("    _hget = vm.helpers.get")
    if uses_heap:
        lines.append("    _heap = vm.memory.data")
        lines.append(f"    _hm = {HEAP_BASE} + vm.memory.size")
        for size in sorted(heap_sizes):
            lines.append(f"    _he{size} = _hm - {size}")
    lines += [
        "    r0 = 0",
        "    r6 = 0",
        "    r7 = 0",
        "    r8 = 0",
        "    r9 = 0",
        "    _bb = 0",
        "    try:",
        "        while 1:",
    ]
    for bi, em in enumerate(emitters):
        lines.append(f"            if _bb <= {bi}:")
        lines.extend(em.lines)
    lines += [
        "    finally:",
        "        out[0] = _budget - _fuel",
        "        out[1] = _hcalls",
    ]
    source = "\n".join(lines) + "\n"

    namespace = dict(_EXEC_GLOBALS)
    try:
        code = compile(source, "<pre-jit>", "exec")
    except SyntaxError as exc:  # pragma: no cover - translation bug guard
        raise JitError(f"generated code failed to compile: {exc}") from exc
    exec(code, namespace)
    fn = namespace["_pluglet"]
    fn.source = source
    return fn


def jit_enabled_by_env() -> bool:
    """The JIT is on by default; ``REPRO_JIT=0`` forces the interpreter."""
    return os.environ.get("REPRO_JIT", "1") != "0"


class JitVirtualMachine(VirtualMachine):
    """A VirtualMachine that executes through a JIT-compiled closure.

    Subclasses the interpreter so helpers keep their full API surface
    (``current_stack``, ``load``/``store``, budgets).  If translation
    fails, ``run`` transparently falls back to the interpreter loop.
    """

    def __init__(
        self,
        instructions: list,
        plugin_memory: PluginMemory,
        helpers: Optional[dict] = None,
        instruction_budget: int = DEFAULT_FUEL,
        helper_call_budget: int = DEFAULT_HELPER_BUDGET,
        analysis: Optional[object] = None,
    ):
        super().__init__(instructions, plugin_memory, helpers,
                         instruction_budget, helper_call_budget)
        try:
            self.jit_function: Optional[Callable] = compile_jit(instructions)
        except JitError:
            self.jit_function = None
        self._fast_function: Optional[Callable] = None
        self._fuel_bound: Optional[int] = None
        self._helper_bound: Optional[int] = None
        if self.jit_function is not None and analysis is not None:
            self._specialize(instructions, plugin_memory, analysis)

    def _specialize(self, instructions: list,
                    plugin_memory: PluginMemory, analysis: object) -> None:
        """Compile the monitor-free variant when the proofs apply here."""
        if not getattr(analysis, "ok", False):
            return
        if plugin_memory.size < getattr(analysis, "heap_size", 0):
            # The heap in-bounds facts assumed a larger memory; dropping
            # the monitor against this one would be unsound.
            return
        mem_facts = getattr(analysis, "mem_facts", None) or {}
        fuel_bound = getattr(analysis, "fuel_bound", None)
        helper_bound = getattr(analysis, "helper_bound", None)
        if not mem_facts and fuel_bound is None and helper_bound is None:
            return  # the proof elides nothing; one closure is enough
        try:
            self._fast_function = compile_jit(instructions, proof=analysis)
        except JitError:  # pragma: no cover - checked variant compiled
            return
        self._fuel_bound = fuel_bound
        self._helper_bound = helper_bound

    @property
    def jit_enabled(self) -> bool:
        return self.jit_function is not None

    @property
    def jit_specialized(self) -> bool:
        """True when a proof-guided monitor-free closure was compiled."""
        return self._fast_function is not None

    @property
    def execution_path(self) -> str:  # type: ignore[override]
        """"jit" when runs go through the compiled closure, else the
        interpreter fallback (profiling attribution)."""
        return "jit" if self.jit_function is not None else "interpreter"

    def run(self, *args: int) -> int:
        fn = self.jit_function
        fast = self._fast_function
        if fast is not None \
                and (self._fuel_bound is None
                     or self.instruction_budget >= self._fuel_bound) \
                and (self._helper_bound is None
                     or self.helper_call_budget >= self._helper_bound):
            fn = fast
        if fn is None:
            return super().run(*args)
        if len(args) > 5:
            raise ValueError("at most 5 arguments (r1-r5)")
        a1 = a2 = a3 = a4 = a5 = 0
        if args:
            padded = [value & _M for value in args] + [0] * (5 - len(args))
            a1, a2, a3, a4, a5 = padded
        stack = bytearray(STACK_SIZE)
        out = [0, 0]
        previous_stack = self.current_stack
        self.current_stack = stack
        self._helper_calls = 0
        try:
            return fn(self, stack, out, a1, a2, a3, a4, a5)
        finally:
            self.instructions_executed += out[0]
            self._helper_calls = out[1]
            self.helper_calls_made += out[1]
            self.current_stack = previous_stack


def create_vm(
    instructions: list,
    plugin_memory: PluginMemory,
    helpers: Optional[dict] = None,
    instruction_budget: int = DEFAULT_FUEL,
    helper_call_budget: int = DEFAULT_HELPER_BUDGET,
    analysis: Optional[object] = None,
) -> VirtualMachine:
    """Build the fastest available VM for a pluglet.

    Returns a :class:`JitVirtualMachine` unless the ``REPRO_JIT=0``
    environment switch forces the reference interpreter.  ``analysis``
    is an :class:`~repro.vm.analysis.AnalysisReport` whose proofs enable
    the monitor-free closure; it is ignored when ``REPRO_ANALYSIS=0``.
    """
    if not jit_enabled_by_env():
        return VirtualMachine(instructions, plugin_memory, helpers,
                              instruction_budget, helper_call_budget)
    if analysis is not None:
        from .analysis import analysis_enabled_by_env

        if not analysis_enabled_by_env():
            analysis = None
    return JitVirtualMachine(instructions, plugin_memory, helpers,
                             instruction_budget, helper_call_budget,
                             analysis=analysis)
