"""The Pluglet Runtime Environment: ISA, verifier, interpreter, JIT, compiler."""

from .analysis import (
    AnalysisReport,
    Diagnostic,
    Severity,
    analysis_enabled_by_env,
    analyze,
    analyze_plugin,
    lint_plugin,
)
from .asm import AssemblyError, assemble, disassemble
from .compiler import CompileError, PlugletCompiler, compile_pluglet
from .jit import (
    JitError,
    JitVirtualMachine,
    compile_jit,
    create_vm,
    jit_enabled_by_env,
)
from .interpreter import (
    DEFAULT_FUEL,
    DEFAULT_HELPER_BUDGET,
    HEAP_BASE,
    STACK_BASE,
    ExecutionError,
    FuelExhausted,
    MemoryViolation,
    PluginMemory,
    VirtualMachine,
    VmError,
)
from .isa import (
    INSTRUCTION_SIZE,
    STACK_SIZE,
    Instruction,
    Op,
    decode_program,
    encode_program,
)
from .analysis.verify import VerificationError, verify, verify_bytecode

__all__ = [
    "AnalysisReport",
    "AssemblyError",
    "CompileError",
    "Diagnostic",
    "Severity",
    "DEFAULT_FUEL",
    "DEFAULT_HELPER_BUDGET",
    "ExecutionError",
    "FuelExhausted",
    "HEAP_BASE",
    "INSTRUCTION_SIZE",
    "Instruction",
    "JitError",
    "JitVirtualMachine",
    "MemoryViolation",
    "Op",
    "PluginMemory",
    "PlugletCompiler",
    "STACK_BASE",
    "STACK_SIZE",
    "VerificationError",
    "VirtualMachine",
    "VmError",
    "analysis_enabled_by_env",
    "analyze",
    "analyze_plugin",
    "assemble",
    "compile_jit",
    "lint_plugin",
    "compile_pluglet",
    "create_vm",
    "decode_program",
    "jit_enabled_by_env",
    "disassemble",
    "encode_program",
    "verify",
    "verify_bytecode",
]
