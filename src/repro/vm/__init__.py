"""The Pluglet Runtime Environment: ISA, verifier, interpreter, compiler."""

from .asm import AssemblyError, assemble, disassemble
from .compiler import CompileError, PlugletCompiler, compile_pluglet
from .interpreter import (
    DEFAULT_FUEL,
    DEFAULT_HELPER_BUDGET,
    HEAP_BASE,
    STACK_BASE,
    ExecutionError,
    FuelExhausted,
    MemoryViolation,
    PluginMemory,
    VirtualMachine,
    VmError,
)
from .isa import (
    INSTRUCTION_SIZE,
    STACK_SIZE,
    Instruction,
    Op,
    decode_program,
    encode_program,
)
from .verifier import VerificationError, verify, verify_bytecode

__all__ = [
    "AssemblyError",
    "CompileError",
    "DEFAULT_FUEL",
    "DEFAULT_HELPER_BUDGET",
    "ExecutionError",
    "FuelExhausted",
    "HEAP_BASE",
    "INSTRUCTION_SIZE",
    "Instruction",
    "MemoryViolation",
    "Op",
    "PluginMemory",
    "PlugletCompiler",
    "STACK_BASE",
    "STACK_SIZE",
    "VerificationError",
    "VirtualMachine",
    "VmError",
    "assemble",
    "compile_pluglet",
    "decode_program",
    "disassemble",
    "encode_program",
    "verify",
    "verify_bytecode",
]
